(* riskroute — command-line front end.

   Subcommands:
     networks               list the 23-network corpus
     route                  RiskRoute vs shortest path between two cities
     ratios                 intradomain risk/distance ratios for a network
     provision              best additional links for a network
     peers                  best new peering per regional network
     forecast               parse / summarise a storm's advisory sequence
     simulate               Monte Carlo outage simulation
     backup                 fast-reroute repair paths for a flow
     pareto                 distance/risk trade-off curve
     shared-risk            joint disaster exposure of two networks
     availability           achieved availability (nines) per posture
     export-gml             write a network map as Topology Zoo GML
     export-geojson         write a network map as GeoJSON
     report                 reproduce a paper table/figure (or all)
     dashboard              render a series/bench JSON as offline HTML *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  let doc = "Enable verbose logging." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let telemetry_arg =
  let doc =
    "Record engine telemetry (counters, histograms, spans) and dump it on \
     exit. $(docv) is a file path (a .prom suffix selects Prometheus text \
     format, anything else JSON) or '-' to write JSON to stderr. Setting \
     RISKROUTE_TELEMETRY=<spec> in the environment is equivalent."
  in
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record the span tree and write it as Chrome trace-event JSON to $(docv) \
     on exit; load it in chrome://tracing or https://ui.perfetto.dev. Each \
     pool domain gets its own track. Setting RISKROUTE_TRACE=<path> in the \
     environment is equivalent, and --telemetry composes with it (the trace \
     never writes to stderr)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let live_arg =
  let doc =
    "Serve the live observability plane on 127.0.0.1:$(docv) for the \
     duration of the run: GET /metrics (Prometheus), /healthz (liveness + \
     span-stall watchdog), /stats (engine cache snapshot), /flight (recent \
     events). Port 0 picks an ephemeral port. Setting RISKROUTE_LIVE=<port> \
     in the environment is equivalent. Output is unchanged by serving."
  in
  Arg.(value & opt (some int) None & info [ "live" ] ~docv:"PORT" ~doc)

let series_arg =
  let doc =
    "Sample the telemetry registries, GC counters and engine cache stats \
     on a background thread (RISKROUTE_SAMPLE_PERIOD seconds apart, \
     default 1) into a bounded ring, and dump the ring as JSON to $(docv) \
     on exit ('-' for stderr). Also starts the Runtime_events consumer \
     that turns GC pauses into gc.pause.* histograms. Setting \
     RISKROUTE_SERIES=<spec> in the environment is equivalent; render the \
     dump with `riskroute dashboard`."
  in
  Arg.(value & opt (some string) None & info [ "series" ] ~docv:"FILE" ~doc)

(* Every subcommand takes --telemetry, --trace, --live and --series:
   observability must not require knowing in advance which entry point
   will be slow. *)
let setup verbose telemetry trace live series =
  setup_logs verbose;
  (match trace with None -> () | Some path -> Rr_obs.enable_trace path);
  (match telemetry with
  | None -> ()
  | Some spec ->
    Rr_obs.enable_dump spec;
    Rr_obs.set_meta "domains"
      (string_of_int (Rr_util.Parallel.domain_count ())));
  Rr_live.set_stats_provider (fun () ->
      Rr_engine.Context.stats_json (Rr_engine.Context.shared ()));
  Rr_live.set_explain_provider (fun q ->
      Rr_explain.of_query (Rr_engine.Context.shared ()) q);
  Rr_obs.Series.set_stats_provider (fun () ->
      Rr_engine.Context.stats_fields (Rr_engine.Context.shared ()));
  Rr_obs.Schema.register "stats" 1;
  Rr_obs.Schema.register "explain" Rr_explain.schema_version;
  Rr_obs.Schema.register "provenance" 1;
  (match series with None -> () | Some spec -> Rr_obs.Series.enable spec);
  (match live with
  | None -> ()
  | Some port -> (
    match Rr_live.start ~port () with
    | Ok bound ->
      Rr_obs.Log.infof
        "riskroute: live introspection listening on http://127.0.0.1:%d/"
        bound
    | Error msg ->
      Rr_obs.Log.errorf "riskroute: %s" msg;
      exit 1));
  Rr_live.autostart_from_env ()

let setup_term =
  Term.(
    const setup $ verbose_arg $ telemetry_arg $ trace_arg $ live_arg
    $ series_arg)

let net_arg =
  let doc = "Network name (e.g. Level3, AT&T, Telepak)." in
  Arg.(required & opt (some string) None & info [ "n"; "network" ] ~doc)

let lambda_h_arg =
  let doc = "Historical risk-averseness tuning parameter lambda_h." in
  Arg.(value & opt float 1e5 & info [ "lambda-h" ] ~doc)

let storm_arg =
  let doc = "Storm name: irene, katrina or sandy." in
  Arg.(value & opt string "sandy" & info [ "storm" ] ~doc)

let ctx () = Rr_engine.Context.shared ()

let find_net name =
  match Rr_engine.Context.net (ctx ()) name with
  | Some net -> Ok net
  | None ->
    Error
      (Printf.sprintf "unknown network %S; try `riskroute networks`" name)

let find_storm name =
  match Rr_forecast.Track.find name with
  | Some storm -> Ok storm
  | None -> Error (Printf.sprintf "unknown storm %S (irene|katrina|sandy)" name)

let or_die = function
  | Ok v -> v
  | Error msg ->
    Rr_obs.Log.errorf "riskroute: %s" msg;
    exit 1

(* --- networks --- *)

let networks_cmd =
  let run () =
    let zoo = Rr_engine.Context.zoo (ctx ()) in
    Format.printf "Tier-1 networks:@.";
    List.iter
      (fun net -> Format.printf "  %a@." Rr_topology.Net.pp_summary net)
      zoo.Rr_topology.Zoo.tier1s;
    Format.printf "Regional networks:@.";
    List.iter
      (fun net -> Format.printf "  %a@." Rr_topology.Net.pp_summary net)
      zoo.Rr_topology.Zoo.regionals;
    Format.printf
      "Synthetic: continental-<pops> (merged CONUS graph built on demand, \
       e.g. `riskroute route -n continental-10000`)@."
  in
  Cmd.v
    (Cmd.info "networks" ~doc:"List the 23-network corpus.")
    Term.(const run $ setup_term)

(* --- route --- *)

(* "continental-<pops>" selects the synthetic merged CONUS topology of
   that size (built on demand, memoised in the shared context) instead
   of a corpus network. Those graphs are routed through the point-to-
   point query facade — no Env, whose dense distance matrix is
   gigabytes at this scale. *)
let continental_pops name =
  let prefix = "continental-" in
  let plen = String.length prefix in
  if
    String.length name > plen
    && String.lowercase_ascii (String.sub name 0 plen) = prefix
  then
    match int_of_string_opt (String.sub name plen (String.length name - plen)) with
    | Some pops when pops > 0 -> Some pops
    | Some _ | None -> None
  else None

let route_continental ~pops ~src ~dst ~lambda_h =
  let c = ctx () in
  let net = Rr_engine.Context.continental c ~pops in
  let q = Rr_engine.Context.net_query c net in
  let pop_id city =
    or_die
      (match Rr_topology.Net.find_pop net ~city with
      | Some i -> Ok i
      | None ->
        Error (Printf.sprintf "no %s PoP in continental-%d" city pops))
  in
  let src_id = pop_id src and dst_id = pop_id dst in
  let miles = Rr_graph.Query.arc_miles q in
  let tgt = Rr_graph.Query.arc_tgt q in
  let off = Rr_graph.Query.arc_off q in
  let params = Riskroute.Params.with_lambda_h lambda_h Riskroute.Params.default in
  let node_risk =
    Array.map
      (fun r ->
        params.Riskroute.Params.lambda_h *. params.Riskroute.Params.risk_scale *. r)
      (Rr_disaster.Riskmap.pop_risks (Rr_engine.Context.riskmap c) net)
  in
  let impact = Rr_topology.Net.population_fractions net in
  let kappa = impact.(src_id) +. impact.(dst_id) in
  let w_miles k = Array.unsafe_get miles k in
  let w_risk k =
    Array.unsafe_get miles k
    +. (kappa *. Array.unsafe_get node_risk (Array.unsafe_get tgt k))
  in
  Rr_graph.Query.prepare q;
  let path_cost weight path =
    let arc u v =
      let rec scan k =
        if k >= off.(u + 1) then or_die (Error "route: path arc missing")
        else if tgt.(k) = v then k
        else scan (k + 1)
      in
      scan off.(u)
    in
    let rec go acc = function
      | u :: (v :: _ as rest) -> go (acc +. weight (arc u v)) rest
      | _ -> acc
    in
    go 0.0 path
  in
  let describe label weight =
    match Rr_graph.Query.run_stats q ~weight ~src:src_id ~dst:dst_id with
    | None, _, _ ->
      or_die (Error (Printf.sprintf "%s and %s are disconnected" src dst))
    | Some (_, path), runner, settled ->
      let names =
        List.map (fun i -> (Rr_topology.Net.pop net i).Rr_topology.Pop.name) path
      in
      Format.printf
        "%s (%.0f bit-miles, %.0f bit-risk-miles) [%s, %d settled]:@.  %s@."
        label (path_cost w_miles path) (path_cost w_risk path)
        (Rr_graph.Query.runner_name runner)
        settled
        (String.concat " -> " names)
  in
  Format.printf "continental-%d: %d PoPs, %d landmarks@." pops
    (Rr_graph.Query.node_count q)
    (Array.length (Rr_graph.Query.landmark_sources q));
  describe "shortest " w_miles;
  describe "riskroute" w_risk

let route_cmd =
  let src_arg =
    Arg.(required & opt (some string) None & info [ "from" ] ~doc:"Source city.")
  in
  let dst_arg =
    Arg.(required & opt (some string) None & info [ "to" ] ~doc:"Destination city.")
  in
  let storm_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "storm" ] ~doc:"Overlay a storm advisory (irene|katrina|sandy).")
  in
  let tick_arg =
    Arg.(value & opt int 40 & info [ "tick" ] ~doc:"Advisory index for --storm.")
  in
  let run () name src dst lambda_h storm tick =
    match continental_pops name with
    | Some pops -> route_continental ~pops ~src ~dst ~lambda_h
    | None ->
    let net = or_die (find_net name) in
    let params = Riskroute.Params.with_lambda_h lambda_h Riskroute.Params.default in
    let advisory =
      Option.map
        (fun s ->
          let storm = or_die (find_storm s) in
          let advisories = Array.of_list (Rr_forecast.Track.advisories storm) in
          if tick < 0 || tick >= Array.length advisories then
            or_die (Error "advisory tick out of range")
          else advisories.(tick))
        storm
    in
    let env = Rr_engine.Context.env ~params ?advisory (ctx ()) net in
    (* Wires the env's query facade into the context's tree LRU so any
       landmark preparation is cached across invocations in-process. *)
    ignore (Rr_engine.Context.query (ctx ()) env);
    let src_id = or_die (match Rr_topology.Net.find_pop net ~city:src with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "no %s PoP in %s" src name)) in
    let dst_id = or_die (match Rr_topology.Net.find_pop net ~city:dst with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "no %s PoP in %s" dst name)) in
    let describe label = function
      | None ->
        or_die (Error (Printf.sprintf "%s and %s are disconnected" src dst))
      | Some (route : Riskroute.Router.route) ->
        let names =
          List.map
            (fun i -> (Rr_topology.Net.pop net i).Rr_topology.Pop.name)
            route.Riskroute.Router.path
        in
        Format.printf "%s (%.0f bit-miles, %.0f bit-risk-miles):@.  %s@." label
          route.Riskroute.Router.bit_miles route.Riskroute.Router.bit_risk_miles
          (String.concat " -> " names)
    in
    describe "shortest " (Riskroute.Router.shortest env ~src:src_id ~dst:dst_id);
    describe "riskroute" (Riskroute.Router.riskroute env ~src:src_id ~dst:dst_id)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Compare RiskRoute and shortest-path routes between two PoPs.")
    Term.(
      const run $ setup_term $ net_arg $ src_arg $ dst_arg $ lambda_h_arg
      $ storm_opt $ tick_arg)

(* --- explain --- *)

let explain_cmd =
  let net_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NETWORK"
          ~doc:"Network name (corpus entry or continental-<pops>).")
  in
  let src_pos =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SRC" ~doc:"Source PoP (city name or numeric id).")
  in
  let dst_pos =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"DST" ~doc:"Destination PoP (city name or numeric id).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the schema'd JSON provenance record instead of the \
             human-readable tables (floats printed exactly, %.17g).")
  in
  let storm_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "storm" ]
          ~doc:"Overlay a storm advisory (irene|katrina|sandy).")
  in
  let tick_arg =
    Arg.(value & opt int 40 & info [ "tick" ] ~doc:"Advisory index for --storm.")
  in
  let lambda_opt =
    Arg.(
      value
      & opt (some float) None
      & info [ "lambda-h" ]
          ~doc:"Historical risk-averseness tuning parameter lambda_h.")
  in
  let top_k_arg =
    Arg.(
      value & opt int 5
      & info [ "top-k" ] ~doc:"How many top risk PoPs/arcs to rank.")
  in
  let run () net src dst lambda_h storm tick top_k json =
    match
      Rr_explain.explain_named ?lambda_h ?storm ~tick ~top_k (ctx ()) ~net ~src
        ~dst
    with
    | Error msg -> or_die (Error msg)
    | Ok t ->
      if json then print_string (Rr_explain.to_json t)
      else Format.printf "%a" Rr_explain.pp t
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain a route: per-arc Eq. 1 decomposition, the risk-detour \
          diff against the shortest path, top risk contributors, and \
          computation provenance.")
    Term.(
      const run $ setup_term $ net_pos $ src_pos $ dst_pos $ lambda_opt
      $ storm_opt $ tick_arg $ top_k_arg $ json_arg)

(* --- env --- *)

let env_cmd =
  let run () =
    Format.printf "%-26s %-24s %s@." "variable" "current" "default";
    List.iter
      (fun (v : Rr_obs.Envvar.t) ->
        let current =
          match Rr_obs.Envvar.raw v with
          | None -> "(unset)"
          | Some s -> Printf.sprintf "%S" s
        in
        Format.printf "%-26s %-24s %s@." v.Rr_obs.Envvar.name current
          v.Rr_obs.Envvar.default;
        Format.printf "%-26s   %s@." "" v.Rr_obs.Envvar.doc)
      Rr_obs.Envvar.all
  in
  Cmd.v
    (Cmd.info "env"
       ~doc:
         "List every recognized RISKROUTE_* environment variable with its \
          current value and default.")
    Term.(const run $ setup_term)

(* --- ratios --- *)

let ratios_cmd =
  let pair_cap_arg =
    Arg.(value & opt int 6000 & info [ "pair-cap" ] ~doc:"Max sampled pairs.")
  in
  let run () name lambda_h pair_cap =
    let net = or_die (find_net name) in
    let params = Riskroute.Params.with_lambda_h lambda_h Riskroute.Params.default in
    let ctx = ctx () in
    let env = Rr_engine.Context.env ~params ctx net in
    let r =
      Riskroute.Ratios.intradomain ~pair_cap
        ~trees:(Rr_engine.Context.dist_trees ctx env)
        env
    in
    Format.printf
      "%s (lambda_h = %.0e): risk reduction %.3f, distance increase %.3f (%d pairs)@."
      name lambda_h r.Riskroute.Ratios.risk_reduction
      r.Riskroute.Ratios.distance_increase r.Riskroute.Ratios.pairs
  in
  Cmd.v
    (Cmd.info "ratios" ~doc:"Intradomain risk/distance ratios (Eqs. 5-6).")
    Term.(const run $ setup_term $ net_arg $ lambda_h_arg $ pair_cap_arg)

(* --- provision --- *)

let provision_cmd =
  let k_arg =
    Arg.(value & opt int 5 & info [ "k" ] ~doc:"Number of links to suggest.")
  in
  let run () name k =
    let net = or_die (find_net name) in
    let ctx = ctx () in
    let env = Rr_engine.Context.env ctx net in
    let picks =
      Riskroute.Augment.greedy ~k
        ~dist_trees:(Rr_engine.Context.dist_trees ctx env)
        ~risk_trees:(Rr_engine.Context.risk_trees ctx env)
        env
    in
    Format.printf "Best %d additional links for %s:@." (List.length picks) name;
    List.iteri
      (fun i (p : Riskroute.Augment.pick) ->
        Format.printf "  %d. %s -- %s (bit-risk at %.3f of original)@." (i + 1)
          (Rr_topology.Net.pop net p.Riskroute.Augment.u).Rr_topology.Pop.name
          (Rr_topology.Net.pop net p.Riskroute.Augment.v).Rr_topology.Pop.name
          p.Riskroute.Augment.fraction)
      picks
  in
  Cmd.v
    (Cmd.info "provision" ~doc:"Suggest risk-reducing additional links (Eq. 4).")
    Term.(const run $ setup_term $ net_arg $ k_arg)

(* --- peers --- *)

let peers_cmd =
  let run () =
    let merged, env = Rr_engine.Context.interdomain (ctx ()) in
    List.iter
      (fun (r : Riskroute.Peer_advisor.recommendation) ->
        Format.printf "%-18s -> peer with %-18s (%.1f%% lower bit-risk)@."
          r.Riskroute.Peer_advisor.regional r.Riskroute.Peer_advisor.peer
          (100.0 *. r.Riskroute.Peer_advisor.improvement))
      (Riskroute.Peer_advisor.recommend_all merged env)
  in
  Cmd.v
    (Cmd.info "peers" ~doc:"Recommend new peerings for regional networks.")
    Term.(const run $ setup_term)

(* --- forecast --- *)

let forecast_cmd =
  let run () storm_name =
    let storm = or_die (find_storm storm_name) in
    let advisories = Rr_forecast.Track.advisories storm in
    Format.printf "Hurricane %s: %d advisories@." storm.Rr_forecast.Track.name
      (List.length advisories);
    List.iter
      (fun (a : Rr_forecast.Advisory.t) ->
        Format.printf "  %a@." Rr_forecast.Advisory.pp a)
      advisories
  in
  Cmd.v
    (Cmd.info "forecast" ~doc:"Parse and list a storm's advisory sequence.")
    Term.(const run $ setup_term $ storm_arg)

(* --- export-gml --- *)

let export_gml_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let run () name path =
    let net = or_die (find_net name) in
    Rr_topology.Gml_io.to_file path net;
    Format.printf "wrote %s (%d PoPs, %d links) to %s@." name
      (Rr_topology.Net.pop_count net)
      (Rr_topology.Net.link_count net)
      path
  in
  Cmd.v
    (Cmd.info "export-gml" ~doc:"Export a network as Topology Zoo GML.")
    Term.(const run $ setup_term $ net_arg $ out_arg)

(* --- simulate --- *)

let simulate_cmd =
  let scenarios_arg =
    Arg.(value & opt int 200 & info [ "scenarios" ] ~doc:"Number of disaster strikes.")
  in
  let radius_arg =
    Arg.(value & opt float 80.0 & info [ "radius" ] ~doc:"Damage radius in miles.")
  in
  let kind_arg =
    Arg.(value & opt string "hurricane"
         & info [ "kind" ] ~doc:"Strike kind: hurricane, tornado or storm.")
  in
  let run () name scenarios radius kind =
    let net = or_die (find_net name) in
    let kind =
      match String.lowercase_ascii kind with
      | "hurricane" -> Rr_disaster.Event.Fema_hurricane
      | "tornado" -> Rr_disaster.Event.Fema_tornado
      | "storm" -> Rr_disaster.Event.Fema_storm
      | other -> or_die (Error (Printf.sprintf "unknown strike kind %S" other))
    in
    let env = Rr_engine.Context.env (ctx ()) net in
    let r =
      Riskroute.Outagesim.run ~scenario_count:scenarios ~radius_miles:radius ~kind env
    in
    Format.printf
      "%s under %d %s strikes (radius %.0f mi):@.  static shortest survival  %.3f@.  static riskroute survival %.3f@.  reactive rerouting        %.3f@.  endpoint loss             %.3f@."
      name r.Riskroute.Outagesim.scenarios
      (Rr_disaster.Event.kind_name kind)
      radius r.Riskroute.Outagesim.shortest_survival
      r.Riskroute.Outagesim.riskroute_survival
      r.Riskroute.Outagesim.reactive_survival r.Riskroute.Outagesim.endpoint_loss
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Monte Carlo outage simulation of static routes.")
    Term.(const run $ setup_term $ net_arg $ scenarios_arg $ radius_arg $ kind_arg)

(* --- backup --- *)

let backup_cmd =
  let src_arg =
    Arg.(required & opt (some string) None & info [ "from" ] ~doc:"Source city.")
  in
  let dst_arg =
    Arg.(required & opt (some string) None & info [ "to" ] ~doc:"Destination city.")
  in
  let run () name src dst =
    let net = or_die (find_net name) in
    let env = Rr_engine.Context.env (ctx ()) net in
    let pop_id city =
      or_die
        (match Rr_topology.Net.find_pop net ~city with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "no %s PoP in %s" city name))
    in
    let src = pop_id src and dst = pop_id dst in
    match Riskroute.Backup.plan env ~src ~dst with
    | None -> or_die (Error "source and destination are disconnected")
    | Some plan ->
      let name_of i = (Rr_topology.Net.pop net i).Rr_topology.Pop.name in
      Format.printf "primary (%.0f bit-miles): %s@."
        plan.Riskroute.Backup.primary.Riskroute.Router.bit_miles
        (String.concat " -> "
           (List.map name_of plan.Riskroute.Backup.primary.Riskroute.Router.path));
      List.iter
        (fun (r : Riskroute.Backup.repair) ->
          let what =
            match (r.Riskroute.Backup.failed_link, r.Riskroute.Backup.failed_node) with
            | Some (u, v), _ -> Printf.sprintf "link %s--%s" (name_of u) (name_of v)
            | None, Some v -> Printf.sprintf "node %s" (name_of v)
            | None, None -> "?"
          in
          match r.Riskroute.Backup.route with
          | Some route ->
            Format.printf "  on %-40s repair via %d hops (%.0f bit-miles)@." what
              (List.length route.Riskroute.Router.path - 1)
              route.Riskroute.Router.bit_miles
          | None -> Format.printf "  on %-40s NO REPAIR (partition)@." what)
        plan.Riskroute.Backup.repairs;
      Format.printf "coverage %.0f%%, worst stretch %.2fx@."
        (100.0 *. Riskroute.Backup.coverage plan)
        (Riskroute.Backup.worst_stretch plan)
  in
  Cmd.v
    (Cmd.info "backup" ~doc:"Pre-compute fast-reroute repair paths for a flow.")
    Term.(const run $ setup_term $ net_arg $ src_arg $ dst_arg)

(* --- pareto --- *)

let pareto_cmd =
  let src_arg =
    Arg.(required & opt (some string) None & info [ "from" ] ~doc:"Source city.")
  in
  let dst_arg =
    Arg.(required & opt (some string) None & info [ "to" ] ~doc:"Destination city.")
  in
  let run () name src dst =
    let net = or_die (find_net name) in
    let env = Rr_engine.Context.env (ctx ()) net in
    let pop_id city =
      or_die
        (match Rr_topology.Net.find_pop net ~city with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "no %s PoP in %s" city name))
    in
    let frontier =
      Riskroute.Pareto.frontier env ~src:(pop_id src) ~dst:(pop_id dst)
    in
    if frontier = [] then
      or_die (Error (Printf.sprintf "%s and %s are disconnected" src dst));
    Format.printf "%d non-dominated routes %s -> %s on %s:@."
      (List.length frontier) src dst name;
    List.iter
      (fun (p : Riskroute.Pareto.point) ->
        Format.printf "  %7.0f bit-miles  risk %9.0f  (%d hops)@."
          p.Riskroute.Pareto.bit_miles p.Riskroute.Pareto.risk
          (List.length p.Riskroute.Pareto.path - 1))
      frontier;
    match Riskroute.Pareto.knee frontier with
    | Some k ->
      Format.printf "suggested knee: %.0f bit-miles at risk %.0f@."
        k.Riskroute.Pareto.bit_miles k.Riskroute.Pareto.risk
    | None -> ()
  in
  Cmd.v
    (Cmd.info "pareto" ~doc:"Distance/risk trade-off curve between two PoPs.")
    Term.(const run $ setup_term $ net_arg $ src_arg $ dst_arg)

(* --- export-geojson --- *)

let export_geojson_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let run () name path =
    let net = or_die (find_net name) in
    Rr_topology.Geo_export.to_file path net;
    Format.printf "wrote %s as GeoJSON to %s@." name path
  in
  Cmd.v
    (Cmd.info "export-geojson" ~doc:"Export a network map as GeoJSON.")
    Term.(const run $ setup_term $ net_arg $ out_arg)

(* --- shared-risk --- *)

let shared_risk_cmd =
  let other_arg =
    Arg.(required & opt (some string) None & info [ "with" ] ~doc:"Second network.")
  in
  let run () name other =
    let a = or_die (find_net name) and b = or_die (find_net other) in
    let riskmap = Rr_engine.Context.riskmap (ctx ()) in
    let corr = Riskroute.Shared_risk.exposure_correlation ~riskmap a b in
    let j =
      Riskroute.Shared_risk.joint_outage ~kind:Rr_disaster.Event.Fema_hurricane a b
    in
    Format.printf "exposure correlation %s / %s: %.3f@." name other corr;
    Format.printf
      "hurricane strikes: P(%s hit)=%.3f P(%s hit)=%.3f P(both)=%.3f gap=%.3f@."
      name j.Riskroute.Shared_risk.a_hit other j.Riskroute.Shared_risk.b_hit
      j.Riskroute.Shared_risk.both_hit j.Riskroute.Shared_risk.independence_gap
  in
  Cmd.v
    (Cmd.info "shared-risk" ~doc:"Shared disaster exposure of two networks.")
    Term.(const run $ setup_term $ net_arg $ other_arg)

(* --- availability --- *)

let availability_cmd =
  let mttr_arg =
    Arg.(value & opt float 12.0 & info [ "mttr" ] ~doc:"Mean time to repair, hours.")
  in
  let run () name mttr =
    let net = or_die (find_net name) in
    let env = Rr_engine.Context.env (ctx ()) net in
    let a = Riskroute.Availability.run ~mttr_hours:mttr env in
    Format.printf
      "%s (%.1f strikes/year, %.0f h MTTR):@." name
      a.Riskroute.Availability.events_per_year a.Riskroute.Availability.mttr_hours;
    List.iter
      (fun (label, v) ->
        Format.printf "  %-18s %.6f  (%.2f nines, %.0f min downtime/yr)@." label v
          (Riskroute.Availability.nines v)
          (Riskroute.Availability.downtime_minutes_per_year v))
      [
        ("static shortest", a.Riskroute.Availability.shortest);
        ("static riskroute", a.Riskroute.Availability.riskroute);
        ("reactive", a.Riskroute.Availability.reactive);
      ]
  in
  Cmd.v
    (Cmd.info "availability" ~doc:"Achieved availability (nines) per routing posture.")
    Term.(const run $ setup_term $ net_arg $ mttr_arg)

(* --- report --- *)

(* Provenance records for the route-producing case studies, attached
   after the report so stdout stays byte-identical: fig7's two lambda
   settings on the canonical Level3 Houston-Boston pair, and the same
   pair under each hurricane's advisory overlay for the fig12/fig13
   case studies. Every record re-derives from the shared context's
   caches, so attaching them costs no extra env builds beyond the
   advisory overlays. *)
let provenance_records exp =
  let c = ctx () in
  let wants id = String.equal exp "all" || String.equal exp id in
  let records = ref [] in
  let add experiment label result =
    match result with
    | Ok t -> records := (experiment, label, Rr_explain.to_json t) :: !records
    | Error msg ->
      Rr_obs.Log.warnf "riskroute: provenance %s/%s: %s" experiment label msg
  in
  if wants "fig7" then
    List.iter
      (fun lambda_h ->
        add "fig7"
          (Printf.sprintf "lambda_h=%.0e" lambda_h)
          (Rr_explain.explain_named ~lambda_h c ~net:"Level3" ~src:"Houston"
             ~dst:"Boston"))
      [ 1e4; 1e5 ];
  if wants "fig12" || wants "fig13" then
    List.iter
      (fun (s : Rr_forecast.Track.storm) ->
        add "fig12"
          (String.lowercase_ascii s.Rr_forecast.Track.name)
          (Rr_explain.explain_named ~storm:s.Rr_forecast.Track.name c
             ~net:"Level3" ~src:"Houston" ~dst:"Boston"))
      Rr_forecast.Track.all;
  List.rev !records

let write_provenance exp path =
  let records = provenance_records exp in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"schema\": 1, \"experiments\": [";
  List.iteri
    (fun i (experiment, label, json) ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b
        (Printf.sprintf "{\"experiment\": %S, \"label\": %S, \"record\": "
           experiment label);
      Buffer.add_string b (String.trim json);
      Buffer.add_string b "}")
    records;
  Buffer.add_string b (if records = [] then "]}\n" else "\n]}\n");
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents b))

let report_cmd =
  let exp_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT"
           ~doc:"Experiment id (table1..fig13) or 'all'.")
  in
  let provenance_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "provenance" ] ~docv:"FILE"
          ~doc:
            "After the report, write route-provenance records (schema'd \
             JSON, see `riskroute explain`) for the case-study experiments \
             to $(docv). Report output is unchanged by this flag.")
  in
  let run () exp provenance =
    let ppf = Format.std_formatter in
    (if String.equal exp "all" then Rr_experiments.Report.run_all (ctx ()) ppf
     else
       match Rr_experiments.Report.find exp with
       | Some e -> Rr_experiments.Report.run_timed e (ctx ()) ppf
       | None ->
         or_die
           (Error
              (Printf.sprintf "unknown experiment %S (try: %s)" exp
                 (String.concat " " (Rr_experiments.Report.ids ())))));
    Format.pp_print_flush ppf ();
    match provenance with None -> () | Some path -> write_provenance exp path
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Reproduce a paper table or figure.")
    Term.(const run $ setup_term $ exp_arg $ provenance_arg)

(* --- bench-compare --- *)

let bench_compare_cmd =
  let baseline_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline BENCH_*.json (the reference).")
  in
  let current_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current BENCH_*.json (the candidate).")
  in
  let threshold_arg =
    let doc =
      "Base noise threshold tau: a kernel regresses when its current p50 \
       exceeds baseline p50 by more than tau plus the baseline's own \
       measured spread (p95/p50 - 1, capped at 0.5)."
    in
    Arg.(value & opt float 0.25 & info [ "threshold" ] ~docv:"TAU" ~doc)
  in
  let run () baseline current tau_base =
    let load path =
      match Rr_perf.Benchfile.read path with
      | Ok f -> f
      | Error msg -> or_die (Error msg)
    in
    let base = load baseline and cur = load current in
    List.iter
      (fun msg -> Rr_obs.Log.warnf "riskroute: warning: %s" msg)
      (Rr_perf.Compare.meta_warnings base.Rr_perf.Benchfile.meta
         cur.Rr_perf.Benchfile.meta);
    let rows = Rr_perf.Compare.run ~tau_base base cur in
    Rr_perf.Compare.pp_table Format.std_formatter rows;
    Format.pp_print_flush Format.std_formatter ();
    if Rr_perf.Compare.any_regression rows then exit 3
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Compare two bench JSON files kernel by kernel; exit 3 when any \
          kernel regressed past its noise threshold.")
    Term.(const run $ setup_term $ baseline_arg $ current_arg $ threshold_arg)

(* --- dashboard --- *)

let dashboard_cmd =
  let input_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"INPUT"
          ~doc:
            "A telemetry series dump (--series / RISKROUTE_SERIES) or a \
             BENCH_*.json benchmark file; the flavour is detected from the \
             document shape.")
  in
  let output_arg =
    let doc =
      "Output HTML path; defaults to $(i,INPUT) with its .json suffix \
       replaced by .html."
    in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run () input output =
    let output =
      match output with
      | Some o -> o
      | None ->
        (if Filename.check_suffix input ".json" then
           Filename.chop_suffix input ".json"
         else input)
        ^ ".html"
    in
    let text =
      let ic = open_in_bin input in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Rr_perf.Dashboard.render ~source:(Filename.basename input) text with
    | Error msg -> or_die (Error msg)
    | Ok html ->
      let oc = open_out_bin output in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc html);
      Printf.printf "wrote %s (%d bytes)\n" output (String.length html)
  in
  Cmd.v
    (Cmd.info "dashboard"
       ~doc:
         "Render a telemetry series dump or bench JSON file as a \
          self-contained offline HTML dashboard (inline SVG, no external \
          assets).")
    Term.(const run $ setup_term $ input_arg $ output_arg)

(* --- replay --- *)

let replay_cmd =
  let mode_arg =
    let doc = "Advisory stepping mode: full (rebuild the environment \
               every tick) or incremental (risk-field delta + env patch \
               + tree repair). The per-tick output is byte-identical \
               either way; only the work differs." in
    Arg.(value & opt string "incremental" & info [ "mode" ] ~doc)
  in
  let pairs_arg =
    let doc = "Flow pairs to track (default: RISKROUTE_REPLAY_PAIRS or 8)." in
    Arg.(value & opt (some int) None & info [ "pairs" ] ~doc)
  in
  let ticks_arg =
    let doc = "Cap on advisory ticks (default: RISKROUTE_REPLAY_TICKS or \
               the whole season)." in
    Arg.(value & opt (some int) None & info [ "ticks" ] ~doc)
  in
  let summary_arg =
    let doc = "Write the work-accounting summary JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "summary" ] ~docv:"FILE" ~doc)
  in
  let run () name storm_name mode pairs ticks summary =
    let mode =
      or_die
        (match Rr_experiments.Replay.mode_of_string mode with
        | Some m -> Ok m
        | None ->
          Error (Printf.sprintf "unknown mode %S (full|incremental)" mode))
    in
    let storm = or_die (find_storm storm_name) in
    let net =
      match continental_pops name with
      | Some pops -> Rr_engine.Context.continental (ctx ()) ~pops
      | None -> or_die (find_net name)
    in
    let t =
      Rr_experiments.Replay.run ~mode ?pairs ?ticks (ctx ()) ~net ~storm
    in
    print_string (Rr_experiments.Replay.render t);
    match summary with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (Rr_experiments.Replay.summary_json t);
      close_out oc
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Stream a storm's advisory season through the engine tick-by-tick, \
          reporting per-tick route churn and risk detours. --mode compares \
          the full-rebuild path against the incremental \
          delta/patch/repair path; their outputs must match bytewise.")
    Term.(
      const run $ setup_term $ net_arg $ storm_arg $ mode_arg $ pairs_arg
      $ ticks_arg $ summary_arg)

let main_cmd =
  let doc = "RiskRoute: mitigate network outage threats (CoNEXT'13 reproduction)." in
  Cmd.group
    (Cmd.info "riskroute" ~version:"1.0.0" ~doc)
    [
      networks_cmd; route_cmd; explain_cmd; env_cmd; ratios_cmd;
      provision_cmd; peers_cmd; forecast_cmd; export_gml_cmd; report_cmd;
      simulate_cmd; backup_cmd; pareto_cmd; export_geojson_cmd;
      shared_risk_cmd; availability_cmd; bench_compare_cmd; dashboard_cmd;
      replay_cmd;
    ]

(* [~catch:false]: let exceptions escape to the runtime's uncaught
   handler, where Rr_obs writes the flight-recorder post-mortem dump
   before the default backtrace — cmdliner's own catch would swallow
   the crash upstream of it. *)
let () = exit (Cmd.eval ~catch:false main_cmd)
