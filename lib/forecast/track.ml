type waypoint = {
  hour : float;
  lat : float;
  lon : float;
  hurricane_radius : float;
  tropical_radius : float;
}

type storm = {
  name : string;
  year : int;
  start_month : int;
  start_day : int;
  start_hour : int;
  tz : string;
  advisory_count : int;
  interval_hours : float;
  waypoints : waypoint array;
}

let w hour lat lon hurricane_radius tropical_radius =
  { hour; lat; lon; hurricane_radius; tropical_radius }

let irene =
  {
    name = "IRENE";
    year = 2011;
    start_month = 8;
    start_day = 20;
    start_hour = 19;
    tz = "EDT";
    advisory_count = 70;
    interval_hours = 3.0;
    waypoints =
      [|
        w 0.0 21.0 (-70.5) 0.0 150.0;
        w 24.0 22.5 (-73.0) 30.0 180.0;
        w 48.0 24.5 (-75.5) 50.0 205.0;
        w 72.0 26.5 (-77.2) 70.0 230.0;
        w 96.0 28.5 (-78.0) 80.0 255.0;
        w 120.0 31.0 (-78.3) 90.0 260.0;
        w 144.0 33.5 (-77.8) 90.0 260.0;
        w 156.0 34.7 (-76.6) 85.0 260.0; (* NC landfall *)
        w 168.0 36.5 (-75.9) 75.0 260.0;
        w 180.0 39.4 (-74.4) 60.0 250.0; (* New Jersey *)
        w 186.0 40.6 (-74.0) 50.0 230.0; (* New York City *)
        w 198.0 43.0 (-73.3) 0.0 200.0;
        w 207.0 45.0 (-71.5) 0.0 150.0;
      |];
  }

let katrina =
  {
    name = "KATRINA";
    year = 2005;
    start_month = 8;
    start_day = 23;
    start_hour = 17;
    tz = "EDT";
    advisory_count = 61;
    interval_hours = 3.0;
    waypoints =
      [|
        w 0.0 23.2 (-75.2) 0.0 70.0;
        w 24.0 24.9 (-77.0) 15.0 90.0;
        w 48.0 25.9 (-80.3) 30.0 115.0;  (* South Florida landfall *)
        w 66.0 24.9 (-82.9) 40.0 140.0;
        w 90.0 24.8 (-85.9) 60.0 175.0;
        w 114.0 26.0 (-88.1) 95.0 220.0;
        w 126.0 27.6 (-89.1) 105.0 230.0; (* category 5 in the Gulf *)
        w 134.0 29.3 (-89.6) 100.0 230.0; (* Buras LA landfall *)
        w 144.0 31.5 (-89.6) 50.0 200.0;  (* inland Mississippi *)
        w 156.0 34.0 (-88.8) 0.0 150.0;
        w 168.0 36.5 (-87.5) 0.0 90.0;
        w 180.0 38.5 (-85.5) 0.0 40.0;
      |];
  }

let sandy =
  {
    name = "SANDY";
    year = 2012;
    start_month = 10;
    start_day = 22;
    start_hour = 11;
    tz = "EDT";
    advisory_count = 60;
    interval_hours = 3.0;
    waypoints =
      [|
        w 0.0 13.5 (-78.0) 0.0 100.0;
        w 24.0 15.5 (-77.5) 0.0 140.0;
        w 48.0 18.0 (-76.8) 35.0 160.0;   (* Jamaica *)
        w 60.0 20.2 (-76.2) 45.0 175.0;   (* Cuba *)
        w 84.0 24.5 (-76.0) 50.0 230.0;   (* Bahamas *)
        w 108.0 28.0 (-77.0) 70.0 310.0;
        w 132.0 32.0 (-75.0) 100.0 400.0;
        (* Sandy's hurricane-force wind field was extraordinarily wide
           (~175 miles) as it turned toward the Mid-Atlantic coast *)
        w 156.0 36.0 (-71.5) 150.0 470.0;
        w 165.0 38.0 (-72.5) 175.0 485.0;
        w 171.0 38.8 (-74.0) 175.0 500.0;
        w 174.0 39.4 (-74.4) 160.0 500.0; (* New Jersey landfall *)
        w 177.0 40.1 (-76.3) 90.0 480.0;  (* inland Pennsylvania *)
      |];
  }

let all = [ irene; katrina; sandy ]

let find name =
  let upper = String.uppercase_ascii name in
  List.find_opt (fun s -> String.equal s.name upper) all

let position_at storm hour =
  let wps = storm.waypoints in
  let n = Array.length wps in
  assert (n > 0);
  if hour <= wps.(0).hour then wps.(0)
  else if hour >= wps.(n - 1).hour then wps.(n - 1)
  else begin
    let rec seg i = if wps.(i + 1).hour >= hour then i else seg (i + 1) in
    let i = seg 0 in
    let a = wps.(i) and b = wps.(i + 1) in
    let f = (hour -. a.hour) /. (b.hour -. a.hour) in
    let mix x y = x +. (f *. (y -. x)) in
    {
      hour;
      lat = mix a.lat b.lat;
      lon = mix a.lon b.lon;
      hurricane_radius = mix a.hurricane_radius b.hurricane_radius;
      tropical_radius = mix a.tropical_radius b.tropical_radius;
    }
  end

(* --- calendar helpers (proleptic Gregorian, good for 1970-2100) --- *)

let month_days year =
  let leap = (year mod 4 = 0 && year mod 100 <> 0) || year mod 400 = 0 in
  [| 31; (if leap then 29 else 28); 31; 30; 31; 30; 31; 31; 30; 31; 30; 31 |]

let month_names =
  [| "JAN"; "FEB"; "MAR"; "APR"; "MAY"; "JUN"; "JUL"; "AUG"; "SEP"; "OCT"; "NOV"; "DEC" |]

let day_names = [| "SUN"; "MON"; "TUE"; "WED"; "THU"; "FRI"; "SAT" |]

(* Sakamoto's day-of-week algorithm. *)
let weekday ~year ~month ~day =
  let t = [| 0; 3; 2; 5; 0; 3; 5; 1; 4; 6; 2; 4 |] in
  let y = if month < 3 then year - 1 else year in
  (y + (y / 4) - (y / 100) + (y / 400) + t.(month - 1) + day) mod 7

let add_hours ~year ~month ~day ~hour delta =
  let total = hour + delta in
  let extra_days = if total >= 0 then total / 24 else ((total + 1) / 24) - 1 in
  let hour = total - (24 * extra_days) in
  let rec roll year month day extra =
    if extra = 0 then (year, month, day)
    else begin
      let dim = (month_days year).(month - 1) in
      if day + extra <= dim then (year, month, day + extra)
      else begin
        let used = dim - day + 1 in
        let month, year = if month = 12 then (1, year + 1) else (month + 1, year) in
        roll year month 1 (extra - used)
      end
    end
  in
  let year, month, day = roll year month day extra_days in
  (year, month, day, hour)

let hour_label hour =
  let ampm = if hour < 12 then "AM" else "PM" in
  let h12 = match hour mod 12 with 0 -> 12 | h -> h in
  Printf.sprintf "%d00 %s" h12 ampm

let timestamp storm ~tick =
  let delta = int_of_float (Float.round (float_of_int tick *. storm.interval_hours)) in
  let year, month, day, hour =
    add_hours ~year:storm.year ~month:storm.start_month ~day:storm.start_day
      ~hour:storm.start_hour delta
  in
  Printf.sprintf "%s %s %s %s %d %d" (hour_label hour) storm.tz
    day_names.(weekday ~year ~month ~day)
    month_names.(month - 1) day year

let advisory_at storm tick =
  let hour = float_of_int tick *. storm.interval_hours in
  let pos = position_at storm hour in
  Advisory.make ~storm:storm.name ~number:(tick + 1)
    ~issued:(timestamp storm ~tick)
    ~center:(Rr_geo.Coord.make ~lat:pos.lat ~lon:pos.lon)
    ~hurricane_radius_miles:pos.hurricane_radius
    ~tropical_radius_miles:pos.tropical_radius

let advisory_texts storm =
  List.map
    (fun tick -> Render.advisory (advisory_at storm tick))
    (Rr_util.Listx.range 0 storm.advisory_count)

let advisories storm =
  List.map
    (fun text ->
      match Parse.advisory text with
      | Ok adv -> adv
      | Error e ->
        failwith
          (Printf.sprintf "Track.advisories: round trip failed (%s)"
             (Parse.error_to_string e)))
    (advisory_texts storm)
