(** Multicore execution engine: a stdlib-only domain pool behind simple
    data-parallel entry points.

    Pool size resolution: {!set_domain_count} override, else the
    [RISKROUTE_DOMAINS] environment variable, else
    [Domain.recommended_domain_count ()]. A size of [1] runs every entry
    point as a plain sequential loop on the calling domain — no domains
    are spawned and results are bit-identical to pre-pool code paths.

    Determinism: all entry points write results by index and reduce on
    the calling domain in index order, so for a task function that is
    deterministic per element the result does not depend on the pool
    size or on scheduling. Task functions must not mutate shared state
    (the sweeps in this repo only read immutable environment arrays). *)

val env_count : unit -> int option
(** The pool size requested by [RISKROUTE_DOMAINS], if any. Unset or
    empty returns [None] silently; a value that is not a positive
    integer returns [None], bumps the [parallel.env_invalid] telemetry
    counter, and prints a one-line stderr note (once per process)
    stating the pool size actually used. *)

val domain_count : unit -> int
(** The pool size parallel entry points will use. *)

val set_domain_count : int -> unit
(** Override the pool size (minimum 1) for subsequent calls; shuts down
    any live pool so the next parallel call rebuilds it at the new
    size. Intended for tests and benchmarks comparing pool sizes. *)

val shutdown : unit -> unit
(** Join all worker domains. Also registered via [at_exit]; safe to call
    when no pool is live. The pool is re-created lazily afterwards. *)

val parallel_for : ?chunks:int -> int -> (int -> unit) -> unit
(** [parallel_for n f] runs [f 0 .. f (n-1)], split into [chunks] queue
    tasks (default [4 x pool size]) executed by the pool. Exceptions are
    re-raised in the caller (first one wins). *)

val map_array : ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; element order of the result is preserved. *)

val fold :
  ?chunks:int ->
  int ->
  f:(int -> 'b) ->
  init:'a ->
  combine:('a -> 'b -> 'a) ->
  'a
(** [fold n ~f ~init ~combine] computes [f i] for [i = 0 .. n-1] in
    parallel, then combines the results {e on the calling domain, in
    index order} — the chunking is invisible to the reduction, so the
    result is independent of the pool size. *)
