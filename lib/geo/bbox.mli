(** Axis-aligned latitude/longitude bounding boxes. *)

type t = private {
  min_lat : float;
  max_lat : float;
  min_lon : float;
  max_lon : float;
}

val make : min_lat:float -> max_lat:float -> min_lon:float -> max_lon:float -> t
(** Raises [Invalid_argument] when min exceeds max. *)

val conus : t
(** The continental United States — the paper's entire study area. *)

val contains : t -> Coord.t -> bool

val of_coords : Coord.t list -> t
(** Tight box around a non-empty coordinate list. *)

val expand : t -> degrees:float -> t
(** Grow each side by [degrees], clamped to valid lat/lon ranges. *)

val center : t -> Coord.t

val clamp : t -> Coord.t -> Coord.t
(** Nearest point of the box to the given coordinate. *)
