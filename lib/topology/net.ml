type tier = Tier1 | Regional

type t = {
  name : string;
  tier : tier;
  pops : Pop.t array;
  graph : Rr_graph.Graph.t;
  states : string list;
}

let make ~name ~tier ?(states = []) pops graph =
  if Rr_graph.Graph.node_count graph <> Array.length pops then
    invalid_arg "Net.make: graph size differs from PoP count";
  Array.iteri
    (fun i (p : Pop.t) ->
      if p.Pop.id <> i then invalid_arg "Net.make: PoP ids must be dense")
    pops;
  { name; tier; pops; graph; states }

let pop_count t = Array.length t.pops

let link_count t = Rr_graph.Graph.edge_count t.graph

let pop t i =
  if i < 0 || i >= Array.length t.pops then invalid_arg "Net.pop: out of range";
  t.pops.(i)

let find_pop t ~city =
  let n = Array.length t.pops in
  let rec loop i =
    if i >= n then None
    else if String.equal t.pops.(i).Pop.city city then Some i
    else loop (i + 1)
  in
  loop 0

let link_miles t u v =
  Rr_geo.Distance.miles (pop t u).Pop.coord (pop t v).Pop.coord

let footprint_miles t =
  let best = ref 0.0 in
  let n = pop_count t in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      best := Float.max !best (link_miles t u v)
    done
  done;
  !best

let average_outdegree t =
  let n = pop_count t in
  if n = 0 then 0.0
  else 2.0 *. float_of_int (link_count t) /. float_of_int n

let is_connected t = Rr_graph.Component.is_connected t.graph

(* Population-proportional impact proxy: each metro's gazetteer
   population is split evenly across its PoPs, then normalised to a
   distribution. Continental-scale graphs use this instead of the census
   nearest-neighbour assignment, whose O(blocks x sites) cost is
   prohibitive past a few thousand sites. *)
let population_fractions t =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun (p : Pop.t) ->
      let key = (p.Pop.city, p.Pop.state) in
      Hashtbl.replace counts key
        (1 + Option.value (Hashtbl.find_opt counts key) ~default:0))
    t.pops;
  let raw =
    Array.map
      (fun (p : Pop.t) ->
        match Rr_cities.Query.by_name ~state:p.Pop.state p.Pop.city with
        | Some c ->
          float_of_int c.Rr_cities.Data.population
          /. float_of_int (Hashtbl.find counts (p.Pop.city, p.Pop.state))
        | None -> 0.0)
      t.pops
  in
  let total = Rr_util.Arrayx.fsum raw in
  if total > 0.0 then Array.map (fun x -> x /. total) raw
  else begin
    let n = Array.length raw in
    Array.make n (if n = 0 then 0.0 else 1.0 /. float_of_int n)
  end

let with_extra_links t links =
  let graph = Rr_graph.Graph.copy t.graph in
  List.iter (fun (u, v) -> Rr_graph.Graph.add_edge graph u v) links;
  { t with graph }

let pp_summary ppf t =
  Format.fprintf ppf "%s (%s): %d PoPs, %d links"
    t.name
    (match t.tier with Tier1 -> "Tier-1" | Regional -> "regional")
    (pop_count t) (link_count t)
