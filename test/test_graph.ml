open Rr_graph

(* --- Graph --- *)

let test_graph_basics () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Alcotest.(check int) "nodes" 4 (Graph.node_count g);
  Alcotest.(check int) "edges" 2 (Graph.edge_count g);
  Alcotest.(check bool) "has 0-1" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "has 1-0 (undirected)" true (Graph.has_edge g 1 0);
  Alcotest.(check bool) "no 0-2" false (Graph.has_edge g 0 2);
  Alcotest.(check int) "degree 1" 2 (Graph.degree g 1)

let test_graph_idempotent_add () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  Alcotest.(check int) "one edge" 1 (Graph.edge_count g)

let test_graph_self_loop () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1)

let test_graph_remove () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  Graph.remove_edge g 0 1;
  Alcotest.(check bool) "removed" false (Graph.has_edge g 0 1);
  Alcotest.(check int) "one left" 1 (Graph.edge_count g);
  Graph.remove_edge g 0 1 (* no-op *);
  Alcotest.(check int) "still one" 1 (Graph.edge_count g)

let test_graph_edges_listing () =
  let g = Graph.of_edges 4 [ (2, 1); (0, 3); (0, 1) ] in
  Alcotest.(check (list (pair int int))) "sorted u < v" [ (0, 1); (0, 3); (1, 2) ]
    (List.sort compare (Graph.edges g))

let test_graph_copy_independent () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let g' = Graph.copy g in
  Graph.add_edge g' 1 2;
  Alcotest.(check int) "copy gains edge" 2 (Graph.edge_count g');
  Alcotest.(check int) "original untouched" 1 (Graph.edge_count g);
  Alcotest.(check bool) "original lacks 1-2" false (Graph.has_edge g 1 2)

let test_graph_out_of_range () =
  let g = Graph.create 2 in
  Alcotest.check_raises "bad node" (Invalid_argument "Graph: node out of range")
    (fun () -> ignore (Graph.neighbors g 5))

let test_csr_mates_involution () =
  let g =
    Graph.of_edges 6 [ (0, 1); (0, 2); (1, 2); (2, 3); (3, 4); (2, 4); (4, 5) ]
  in
  let off, tgt = Graph.to_csr g in
  let mate = Graph.csr_mates ~off ~tgt in
  Alcotest.(check int) "one mate per arc" (Array.length tgt)
    (Array.length mate);
  for u = 0 to Graph.node_count g - 1 do
    for k = off.(u) to off.(u + 1) - 1 do
      let m = mate.(k) in
      Alcotest.(check int) "involution" k mate.(m);
      (* The mate of u -> v is an arc out of v back to u. *)
      Alcotest.(check int) "mate returns" u tgt.(m);
      Alcotest.(check bool) "mate leaves v" true
        (off.(tgt.(k)) <= m && m < off.(tgt.(k) + 1))
    done
  done

(* --- Dijkstra --- *)

let line_graph weights =
  (* 0 -1- 2 -... chain with given weights *)
  let n = Array.length weights + 1 in
  let g = Graph.create n in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1)
  done;
  let weight u v =
    let lo = min u v in
    weights.(lo)
  in
  (g, weight)

let test_dijkstra_chain () =
  let g, weight = line_graph [| 1.0; 2.0; 3.0 |] in
  let tree = Dijkstra.single_source g ~weight ~src:0 in
  Alcotest.(check (float 1e-9)) "dist to 3" 6.0 tree.Dijkstra.dist.(3);
  Alcotest.(check (option (list int))) "path" (Some [ 0; 1; 2; 3 ])
    (Dijkstra.path_of_tree tree ~src:0 ~dst:3)

let test_dijkstra_picks_cheaper () =
  (* square: 0-1-3 costs 2, 0-2-3 costs 10 *)
  let g = Graph.of_edges 4 [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let weight u v =
    match (min u v, max u v) with
    | 0, 1 | 1, 3 -> 1.0
    | _ -> 5.0
  in
  match Dijkstra.single_pair g ~weight ~src:0 ~dst:3 with
  | Some (cost, path) ->
    Alcotest.(check (float 1e-9)) "cost" 2.0 cost;
    Alcotest.(check (list int)) "path" [ 0; 1; 3 ] path
  | None -> Alcotest.fail "connected"

let test_dijkstra_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let weight _ _ = 1.0 in
  Alcotest.(check bool) "no path" true
    (Dijkstra.single_pair g ~weight ~src:0 ~dst:3 = None);
  let tree = Dijkstra.single_source g ~weight ~src:0 in
  Alcotest.(check bool) "inf dist" true (tree.Dijkstra.dist.(3) = infinity);
  Alcotest.(check (option (list int))) "no tree path" None
    (Dijkstra.path_of_tree tree ~src:0 ~dst:3)

let test_dijkstra_src_eq_dst () =
  let g = Graph.of_edges 2 [ (0, 1) ] in
  match Dijkstra.single_pair g ~weight:(fun _ _ -> 1.0) ~src:0 ~dst:0 with
  | Some (cost, path) ->
    Alcotest.(check (float 1e-9)) "zero" 0.0 cost;
    Alcotest.(check (list int)) "trivial path" [ 0 ] path
  | None -> Alcotest.fail "self distance"

let test_dijkstra_negative_weight () =
  let g = Graph.of_edges 2 [ (0, 1) ] in
  Alcotest.check_raises "rejects negative"
    (Invalid_argument "Dijkstra: negative edge weight") (fun () ->
      ignore (Dijkstra.single_pair g ~weight:(fun _ _ -> -1.0) ~src:0 ~dst:1))

let test_dijkstra_directional_weight () =
  (* asymmetric weight: going 0 -> 1 costs 1, 1 -> 0 costs 10 *)
  let g = Graph.of_edges 2 [ (0, 1) ] in
  let weight u v = if u < v then 1.0 else 10.0 in
  let c01 = Option.get (Dijkstra.single_pair g ~weight ~src:0 ~dst:1) in
  let c10 = Option.get (Dijkstra.single_pair g ~weight ~src:1 ~dst:0) in
  Alcotest.(check (float 1e-9)) "forward" 1.0 (fst c01);
  Alcotest.(check (float 1e-9)) "backward" 10.0 (fst c10)

let test_path_cost () =
  let weight u v = float_of_int (u + v) in
  Alcotest.(check (float 1e-9)) "sum" 4.0 (Dijkstra.path_cost ~weight [ 0; 1; 2 ]);
  Alcotest.(check (float 1e-9)) "singleton" 0.0 (Dijkstra.path_cost ~weight [ 7 ])

(* brute-force Bellman-Ford-ish reference for random graphs *)
let brute_force_dist g ~weight ~src =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  dist.(src) <- 0.0;
  for _ = 1 to n do
    List.iter
      (fun (u, v) ->
        if dist.(u) +. weight u v < dist.(v) then dist.(v) <- dist.(u) +. weight u v;
        if dist.(v) +. weight v u < dist.(u) then dist.(u) <- dist.(v) +. weight v u)
      (Graph.edges g)
  done;
  dist

let random_graph_gen =
  QCheck.Gen.(
    int_range 2 12 >>= fun n ->
    list_size (int_range 0 30) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    >>= fun edges ->
    let edges = List.filter (fun (u, v) -> u <> v) edges in
    return (n, edges))

let arb_random_graph =
  QCheck.make random_graph_gen ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges)))

let dijkstra_matches_brute_force =
  QCheck.Test.make ~name:"dijkstra equals brute force on random graphs" ~count:200
    arb_random_graph
    (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      let weight u v = float_of_int (((u * 7) + (v * 13)) mod 19) +. 1.0 in
      let tree = Dijkstra.single_source g ~weight ~src:0 in
      let reference = brute_force_dist g ~weight ~src:0 in
      Array.for_all2
        (fun a b -> (a = infinity && b = infinity) || Float.abs (a -. b) < 1e-6)
        tree.Dijkstra.dist reference)

let single_pair_consistent =
  QCheck.Test.make ~name:"single_pair cost equals path_cost of its path" ~count:200
    arb_random_graph
    (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      let weight u v = float_of_int (((u * 3) + (v * 5)) mod 11) +. 0.5 in
      match Dijkstra.single_pair g ~weight ~src:0 ~dst:(n - 1) with
      | None -> true
      | Some (cost, path) ->
        Float.abs (cost -. Dijkstra.path_cost ~weight path) < 1e-9
        && List.hd path = 0
        && List.nth path (List.length path - 1) = n - 1)

(* --- Component --- *)

let test_components () =
  let g = Graph.of_edges 6 [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check int) "three components" 3 (Component.component_count g);
  Alcotest.(check bool) "not connected" false (Component.is_connected g);
  Alcotest.(check (list int)) "largest" [ 0; 1; 2 ] (Component.largest_component g)

let test_components_connected () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "connected" true (Component.is_connected g);
  let labels = Component.components g in
  Alcotest.(check (array int)) "all zero" [| 0; 0; 0 |] labels

let test_components_empty () =
  Alcotest.(check bool) "empty graph connected" true
    (Component.is_connected (Graph.create 0))

(* --- Spanner --- *)

let ring_points n =
  Array.init n (fun i ->
      let theta = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
      (cos theta, sin theta))

let euclid points u v =
  let xu, yu = points.(u) and xv, yv = points.(v) in
  sqrt (((xu -. xv) ** 2.0) +. ((yu -. yv) ** 2.0))

let test_mst_connected () =
  let points = ring_points 12 in
  let g = Spanner.mst ~n:12 ~dist:(euclid points) in
  Alcotest.(check bool) "connected" true (Component.is_connected g);
  Alcotest.(check int) "n-1 edges" 11 (Graph.edge_count g)

let test_mst_single_node () =
  let g = Spanner.mst ~n:1 ~dist:(fun _ _ -> 0.0) in
  Alcotest.(check int) "no edges" 0 (Graph.edge_count g)

let test_gabriel_ring () =
  let points = ring_points 8 in
  let g = Spanner.gabriel ~n:8 ~dist:(euclid points) in
  (* ring neighbours are Gabriel edges; antipodal pairs are not *)
  Alcotest.(check bool) "adjacent linked" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "antipodal blocked" false (Graph.has_edge g 0 4)

let test_knn_degree () =
  let points = ring_points 10 in
  let g = Spanner.knn ~n:10 ~dist:(euclid points) ~k:2 in
  for v = 0 to 9 do
    Alcotest.(check bool) "degree >= k" true (Graph.degree g v >= 2)
  done

let test_union () =
  let a = Graph.of_edges 3 [ (0, 1) ] in
  let b = Graph.of_edges 3 [ (1, 2) ] in
  let u = Spanner.union a b in
  Alcotest.(check int) "edges merged" 2 (Graph.edge_count u);
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Spanner.union: node-count mismatch") (fun () ->
      ignore (Spanner.union a (Graph.create 5)))

let mst_always_spanning =
  QCheck.Test.make ~name:"mst spans any point set" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (pair (float_range (-1.0) 1.0) (float_range (-1.0) 1.0)))
    (fun pts ->
      let points = Array.of_list pts in
      let n = Array.length points in
      let g = Spanner.mst ~n ~dist:(euclid points) in
      Component.is_connected g && Graph.edge_count g = n - 1)

(* --- Dijkstra.repair: incremental SSSP vs fresh recompute, bitwise --- *)

let bits = Int64.bits_of_float

(* Random connected graph as CSR, plus the arc-source table repair's
   [changed] entries need. *)
let build_random_csr rng ~n ~extra =
  let g = Graph.create n in
  for v = 1 to n - 1 do
    Graph.add_edge g (Rr_util.Prng.int rng v) v
  done;
  for _ = 1 to extra do
    let u = Rr_util.Prng.int rng n and v = Rr_util.Prng.int rng n in
    if u <> v && not (Graph.has_edge g u v) then Graph.add_edge g u v
  done;
  let off, tgt = Graph.to_csr g in
  let mate = Graph.csr_mates ~off ~tgt in
  let src_of = Array.make (Array.length tgt) 0 in
  for u = 0 to n - 1 do
    for k = off.(u) to off.(u + 1) - 1 do
      src_of.(k) <- u
    done
  done;
  (off, tgt, mate, src_of)

(* Repair [base] (computed under [w_old]) into the tree for [w_new] and
   check it is bit-identical — dist AND parent — to a fresh run. *)
let check_repair ~label ?frontier_limit ~n ~off ~tgt ~mate ~w_old ~w_new
    ~changed ~src () =
  let weight k = w_new.(k) and old_weight k = w_old.(k) in
  let base = Dijkstra.single_source_flat ~n ~off ~tgt ~weight:old_weight ~src in
  let fresh = Dijkstra.single_source_flat ~n ~off ~tgt ~weight ~src in
  let repaired, stats =
    Dijkstra.repair ~n ~off ~tgt ~mate ~weight ~old_weight ~changed
      ?frontier_limit base ~src
  in
  for v = 0 to n - 1 do
    if bits repaired.Dijkstra.dist.(v) <> bits fresh.Dijkstra.dist.(v) then
      Alcotest.failf "%s: dist mismatch at node %d (%h vs %h)" label v
        repaired.Dijkstra.dist.(v) fresh.Dijkstra.dist.(v);
    if repaired.Dijkstra.parent.(v) <> fresh.Dijkstra.parent.(v) then
      Alcotest.failf "%s: parent mismatch at node %d" label v
  done;
  (* The input tree must not be mutated. *)
  let base' = Dijkstra.single_source_flat ~n ~off ~tgt ~weight:old_weight ~src in
  for v = 0 to n - 1 do
    if bits base.Dijkstra.dist.(v) <> bits base'.Dijkstra.dist.(v) then
      Alcotest.failf "%s: repair mutated its input tree at %d" label v
  done;
  stats

(* Per-arc weights from an undirected (u, v) -> w table. *)
let arc_weights ~tgt ~src_of table =
  Array.init (Array.length tgt) (fun k ->
      let u = src_of.(k) and v = tgt.(k) in
      List.assoc (min u v, max u v) table)

let diamond () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let off, tgt = Graph.to_csr g in
  let mate = Graph.csr_mates ~off ~tgt in
  let src_of = Array.make (Array.length tgt) 0 in
  for u = 0 to 3 do
    for k = off.(u) to off.(u + 1) - 1 do
      src_of.(k) <- u
    done
  done;
  (off, tgt, mate, src_of)

let changed_arcs ~src_of ~w_old ~w_new =
  let acc = ref [] in
  for k = Array.length w_old - 1 downto 0 do
    if bits w_old.(k) <> bits w_new.(k) then acc := (k, src_of.(k)) :: !acc
  done;
  Array.of_list !acc

let test_repair_localised_increase () =
  let off, tgt, mate, src_of = diamond () in
  let w_old =
    arc_weights ~tgt ~src_of
      [ ((0, 1), 1.0); ((1, 2), 1.0); ((2, 3), 1.0); ((0, 3), 9.5) ]
  in
  (* Raising 1-2 re-routes the {2, 3} subtree through the 0-3 arc. *)
  let w_new =
    arc_weights ~tgt ~src_of
      [ ((0, 1), 1.0); ((1, 2), 10.0); ((2, 3), 1.0); ((0, 3), 9.5) ]
  in
  let changed = changed_arcs ~src_of ~w_old ~w_new in
  Alcotest.(check int) "both directions changed" 2 (Array.length changed);
  let stats =
    check_repair ~label:"localised increase" ~n:4 ~off ~tgt ~mate ~w_old ~w_new
      ~changed ~src:0 ()
  in
  Alcotest.(check bool) "repair stayed local" false stats.Dijkstra.full;
  Alcotest.(check bool) "settled only the dirty region" true
    (stats.Dijkstra.settled > 0 && stats.Dijkstra.settled <= 4)

let test_repair_decrease () =
  let off, tgt, mate, src_of = diamond () in
  let w_old =
    arc_weights ~tgt ~src_of
      [ ((0, 1), 1.0); ((1, 2), 1.0); ((2, 3), 1.0); ((0, 3), 9.5) ]
  in
  (* Dropping 0-3 pulls node 3 (and then 2) onto the direct arc. *)
  let w_new =
    arc_weights ~tgt ~src_of
      [ ((0, 1), 1.0); ((1, 2), 1.0); ((2, 3), 1.0); ((0, 3), 0.25) ]
  in
  let changed = changed_arcs ~src_of ~w_old ~w_new in
  let stats =
    check_repair ~label:"decrease" ~n:4 ~off ~tgt ~mate ~w_old ~w_new ~changed
      ~src:0 ()
  in
  Alcotest.(check bool) "repair stayed local" false stats.Dijkstra.full

let test_repair_empty_change_is_noop () =
  let off, tgt, mate, src_of = diamond () in
  let w =
    arc_weights ~tgt ~src_of
      [ ((0, 1), 1.0); ((1, 2), 1.0); ((2, 3), 1.0); ((0, 3), 9.5) ]
  in
  let stats =
    check_repair ~label:"empty change" ~n:4 ~off ~tgt ~mate ~w_old:w ~w_new:w
      ~changed:[||] ~src:0 ()
  in
  Alcotest.(check bool) "no fallback" false stats.Dijkstra.full;
  Alcotest.(check int) "nothing settled" 0 stats.Dijkstra.settled

let test_repair_frontier_fallback () =
  let off, tgt, mate, src_of = diamond () in
  let w_old =
    arc_weights ~tgt ~src_of
      [ ((0, 1), 1.0); ((1, 2), 1.0); ((2, 3), 1.0); ((0, 3), 9.5) ]
  in
  let w_new =
    arc_weights ~tgt ~src_of
      [ ((0, 1), 1.0); ((1, 2), 10.0); ((2, 3), 1.0); ((0, 3), 9.5) ]
  in
  let changed = changed_arcs ~src_of ~w_old ~w_new in
  let stats =
    check_repair ~label:"frontier fallback" ~frontier_limit:0 ~n:4 ~off ~tgt
      ~mate ~w_old ~w_new ~changed ~src:0 ()
  in
  Alcotest.(check bool) "fell back to a full run" true stats.Dijkstra.full

let test_repair_random_changes () =
  (* Randomized increases, decreases and mixes over random connected
     graphs; every case must be bit-identical to a fresh run. *)
  List.iter
    (fun seed ->
      let rng = Rr_util.Prng.create (Int64.of_int (0x5eed + seed)) in
      let n = 40 + Rr_util.Prng.int rng 80 in
      let off, tgt, mate, src_of = build_random_csr rng ~n ~extra:(2 * n) in
      let m = Array.length tgt in
      let w_old =
        Array.init m (fun _ -> 1.0 +. Rr_util.Prng.float rng 100.0)
      in
      let w_new = Array.copy w_old in
      let kind = seed mod 3 in
      for _ = 1 to 1 + Rr_util.Prng.int rng 12 do
        let k = Rr_util.Prng.int rng m in
        if bits w_new.(k) = bits w_old.(k) then
          w_new.(k) <-
            (match kind with
            | 0 -> w_old.(k) +. 0.5 +. Rr_util.Prng.float rng 80.0
            | 1 -> w_old.(k) *. (0.05 +. Rr_util.Prng.float rng 0.9)
            | _ ->
              if Rr_util.Prng.bool rng then
                w_old.(k) +. 0.5 +. Rr_util.Prng.float rng 80.0
              else w_old.(k) *. (0.05 +. Rr_util.Prng.float rng 0.9))
      done;
      let changed = changed_arcs ~src_of ~w_old ~w_new in
      let src = Rr_util.Prng.int rng n in
      ignore
        (check_repair
           ~label:(Printf.sprintf "seed %d (kind %d)" seed kind)
           ~n ~off ~tgt ~mate ~w_old ~w_new ~changed ~src ()))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]

let () =
  Alcotest.run "rr_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "idempotent add" `Quick test_graph_idempotent_add;
          Alcotest.test_case "self loop" `Quick test_graph_self_loop;
          Alcotest.test_case "remove" `Quick test_graph_remove;
          Alcotest.test_case "edge listing" `Quick test_graph_edges_listing;
          Alcotest.test_case "copy independence" `Quick test_graph_copy_independent;
          Alcotest.test_case "out of range" `Quick test_graph_out_of_range;
          Alcotest.test_case "csr mates involution" `Quick
            test_csr_mates_involution;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "chain" `Quick test_dijkstra_chain;
          Alcotest.test_case "picks cheaper" `Quick test_dijkstra_picks_cheaper;
          Alcotest.test_case "disconnected" `Quick test_dijkstra_disconnected;
          Alcotest.test_case "src = dst" `Quick test_dijkstra_src_eq_dst;
          Alcotest.test_case "negative weight" `Quick test_dijkstra_negative_weight;
          Alcotest.test_case "directional weight" `Quick test_dijkstra_directional_weight;
          Alcotest.test_case "path cost" `Quick test_path_cost;
          QCheck_alcotest.to_alcotest dijkstra_matches_brute_force;
          QCheck_alcotest.to_alcotest single_pair_consistent;
        ] );
      ( "repair",
        [
          Alcotest.test_case "localised increase" `Quick
            test_repair_localised_increase;
          Alcotest.test_case "decrease" `Quick test_repair_decrease;
          Alcotest.test_case "empty change" `Quick
            test_repair_empty_change_is_noop;
          Alcotest.test_case "frontier fallback" `Quick
            test_repair_frontier_fallback;
          Alcotest.test_case "random changes bitwise" `Quick
            test_repair_random_changes;
        ] );
      ( "component",
        [
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "connected" `Quick test_components_connected;
          Alcotest.test_case "empty" `Quick test_components_empty;
        ] );
      ( "spanner",
        [
          Alcotest.test_case "mst connected" `Quick test_mst_connected;
          Alcotest.test_case "mst single node" `Quick test_mst_single_node;
          Alcotest.test_case "gabriel ring" `Quick test_gabriel_ring;
          Alcotest.test_case "knn degree" `Quick test_knn_degree;
          Alcotest.test_case "union" `Quick test_union;
          QCheck_alcotest.to_alcotest mst_always_spanning;
        ] );
    ]
