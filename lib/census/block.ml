type t = {
  coord : Rr_geo.Coord.t;
  state : string;
  population : float;
}

let total_population blocks =
  Rr_util.Arrayx.fsum (Array.map (fun b -> b.population) blocks)
