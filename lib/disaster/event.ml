type kind =
  | Fema_hurricane
  | Fema_tornado
  | Fema_storm
  | Noaa_earthquake
  | Noaa_wind

type t = {
  kind : kind;
  coord : Rr_geo.Coord.t;
  year : int;
  month : int;
}

let all_kinds =
  [ Fema_hurricane; Fema_tornado; Fema_storm; Noaa_earthquake; Noaa_wind ]

let kind_name = function
  | Fema_hurricane -> "FEMA Hurricane"
  | Fema_tornado -> "FEMA Tornado"
  | Fema_storm -> "FEMA Storm"
  | Noaa_earthquake -> "NOAA Earthquake"
  | Noaa_wind -> "NOAA Wind"

let paper_count = function
  | Fema_hurricane -> 2_805
  | Fema_tornado -> 6_437
  | Fema_storm -> 20_623
  | Noaa_earthquake -> 2_267
  | Noaa_wind -> 143_847

let paper_bandwidth = function
  | Fema_hurricane -> 71.56
  | Fema_tornado -> 59.48
  | Fema_storm -> 24.38
  | Noaa_earthquake -> 298.82
  | Noaa_wind -> 3.59
