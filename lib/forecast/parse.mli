(** Natural-language parsing of NHC public-advisory text (Sec. 4.4).

    Extracts the storm name, advisory number, issuance time, centre
    coordinates ("...LATITUDE 35.2 NORTH...LONGITUDE 76.4 WEST...") and
    the hurricane-force / tropical-storm-force wind radii
    ("...HURRICANE-FORCE WINDS EXTEND OUTWARD UP TO 90 MILES..."). *)

type error =
  | Missing_center
  | Missing_storm_name
  | Malformed of string

val advisory : string -> (Advisory.t, error) result
(** Parse one advisory. Wind radii default to 0 when the corresponding
    sentence is absent (e.g. after downgrade to a tropical storm). *)

val error_to_string : error -> string
