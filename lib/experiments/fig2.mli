(** Fig. 2: AS-level connectivity between the 23 networks. *)

val run : Format.formatter -> unit

val edge_count : unit -> int
