(* Provisioning study: where should an operator build its next links?

   Reproduces the Sec. 6.3 / Fig. 9-10 workflow for one network: find the
   greedy sequence of new PoP-to-PoP links minimising total aggregated
   bit-risk miles, and show the resulting decay curve plus how the
   intradomain ratios improve once the links are installed.

   Run with:  dune exec examples/provisioning.exe [network] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "Sprint" in
  let zoo = Rr_topology.Zoo.shared () in
  let net =
    match Rr_topology.Zoo.find zoo name with
    | Some net -> net
    | None -> failwith ("unknown network " ^ name)
  in
  let env = Riskroute.Env.of_net net in
  Printf.printf "Provisioning study for %s (%d PoPs, %d links)\n\n" name
    (Rr_topology.Net.pop_count net)
    (Rr_topology.Net.link_count net);
  let picks = Riskroute.Augment.greedy ~k:6 env in
  Printf.printf "Greedy link additions (Eq. 4, mean-impact objective):\n";
  List.iteri
    (fun i (p : Riskroute.Augment.pick) ->
      Printf.printf "  %d. %-22s -- %-22s -> bit-risk at %.3f of original\n"
        (i + 1)
        (Rr_topology.Net.pop net p.Riskroute.Augment.u).Rr_topology.Pop.name
        (Rr_topology.Net.pop net p.Riskroute.Augment.v).Rr_topology.Pop.name
        p.Riskroute.Augment.fraction)
    picks;
  (* Install the links and re-measure the Eq. 5-6 ratios. *)
  let links =
    List.map
      (fun (p : Riskroute.Augment.pick) ->
        (p.Riskroute.Augment.u, p.Riskroute.Augment.v))
      picks
  in
  let upgraded = Rr_topology.Net.with_extra_links net links in
  let env' = Riskroute.Env.of_net upgraded in
  let before = Riskroute.Ratios.intradomain env in
  let after = Riskroute.Ratios.intradomain env' in
  Printf.printf
    "\nIntradomain ratios before: risk reduction %.3f, distance increase %.3f\n"
    before.Riskroute.Ratios.risk_reduction before.Riskroute.Ratios.distance_increase;
  Printf.printf
    "Intradomain ratios after : risk reduction %.3f, distance increase %.3f\n"
    after.Riskroute.Ratios.risk_reduction after.Riskroute.Ratios.distance_increase;
  Printf.printf
    "\n(The residual risk-reduction ratio shrinks once the topology already\n\
     routes around the hot spots: the links bought the improvement.)\n"
