(* Cross-cutting property tests: invariants that should hold for any
   input, checked with qcheck generators over each substrate. *)

open Riskroute

let coord lat lon = Rr_geo.Coord.make ~lat ~lon

let arb_coord =
  QCheck.make
    QCheck.Gen.(
      map2
        (fun lat lon -> coord lat lon)
        (float_range 25.0 49.0) (float_range (-124.0) (-67.0)))
    ~print:Rr_geo.Coord.to_string

(* --- geo --- *)

let grid_cell_in_bounds =
  QCheck.Test.make ~name:"grid cell indices within bounds" ~count:300 arb_coord
    (fun c ->
      let grid = Rr_geo.Grid.create Rr_geo.Bbox.conus ~rows:37 ~cols:91 in
      match Rr_geo.Grid.cell_of_coord grid c with
      | None -> not (Rr_geo.Bbox.contains Rr_geo.Bbox.conus c)
      | Some (row, col) -> row >= 0 && row < 37 && col >= 0 && col < 91)

let grid_cell_center_round_trip =
  QCheck.Test.make ~name:"cell centre maps back to its own cell" ~count:300
    (QCheck.pair QCheck.(int_bound 36) QCheck.(int_bound 90))
    (fun (row, col) ->
      let grid = Rr_geo.Grid.create Rr_geo.Bbox.conus ~rows:37 ~cols:91 in
      Rr_geo.Grid.cell_of_coord grid (Rr_geo.Grid.coord_of_cell grid row col)
      = Some (row, col))

let bbox_expand_contains =
  QCheck.Test.make ~name:"expanded bbox contains the original's points" ~count:200
    (QCheck.pair arb_coord (QCheck.float_range 0.0 10.0))
    (fun (c, degrees) ->
      let box =
        Rr_geo.Bbox.of_coords [ c; coord (Rr_geo.Coord.lat c) (-96.0) ]
      in
      Rr_geo.Bbox.contains (Rr_geo.Bbox.expand box ~degrees) c)

let clamp_idempotent =
  QCheck.Test.make ~name:"bbox clamp is idempotent" ~count:300
    (QCheck.pair (QCheck.float_range (-89.0) 89.0) (QCheck.float_range (-179.0) 179.0))
    (fun (lat, lon) ->
      let p = Rr_geo.Coord.make ~lat ~lon in
      let once = Rr_geo.Bbox.clamp Rr_geo.Bbox.conus p in
      Rr_geo.Coord.equal once (Rr_geo.Bbox.clamp Rr_geo.Bbox.conus once)
      && Rr_geo.Bbox.contains Rr_geo.Bbox.conus once)

(* --- graph --- *)

let arb_graph =
  QCheck.make
    QCheck.Gen.(
      int_range 2 10 >>= fun n ->
      list_size (int_range 0 25) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      >>= fun edges -> return (n, List.filter (fun (u, v) -> u <> v) edges))
    ~print:(fun (n, edges) -> Printf.sprintf "n=%d m=%d" n (List.length edges))

let early_exit_matches_full =
  QCheck.Test.make ~name:"single_pair equals single_source distance" ~count:200
    arb_graph
    (fun (n, edges) ->
      let g = Rr_graph.Graph.of_edges n edges in
      let weight u v = 1.0 +. float_of_int ((u + (2 * v)) mod 7) in
      let tree = Rr_graph.Dijkstra.single_source g ~weight ~src:0 in
      match Rr_graph.Dijkstra.single_pair g ~weight ~src:0 ~dst:(n - 1) with
      | None -> tree.Rr_graph.Dijkstra.dist.(n - 1) = infinity
      | Some (cost, _) -> Float.abs (cost -. tree.Rr_graph.Dijkstra.dist.(n - 1)) < 1e-9)

let remove_edge_weakens_connectivity =
  QCheck.Test.make ~name:"removing an edge never reduces component count" ~count:200
    arb_graph
    (fun (n, edges) ->
      QCheck.assume (edges <> []);
      let g = Rr_graph.Graph.of_edges n edges in
      let before = Rr_graph.Component.component_count g in
      let u, v = List.hd edges in
      Rr_graph.Graph.remove_edge g u v;
      Rr_graph.Component.component_count g >= before)

let yen_paths_sorted =
  QCheck.Test.make ~name:"yen returns sorted, loopless, distinct paths" ~count:100
    arb_graph
    (fun (n, edges) ->
      let g = Rr_graph.Graph.of_edges n edges in
      let weight u v = 1.0 +. float_of_int ((u * v) mod 5) in
      let paths = Rr_graph.Kpaths.yen g ~weight ~src:0 ~dst:(n - 1) ~k:5 in
      let costs = List.map fst paths in
      let node_paths = List.map snd paths in
      List.sort Float.compare costs = costs
      && List.length (List.sort_uniq compare node_paths) = List.length node_paths
      && List.for_all
           (fun p -> List.length (List.sort_uniq compare p) = List.length p)
           node_paths)

(* --- core metric --- *)

let arb_env =
  QCheck.make
    QCheck.Gen.(
      int_range 3 8 >>= fun n ->
      list_size (int_range 0 12) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      >>= fun extra ->
      array_size (return n) (float_range 0.0 2e-4) >>= fun historical ->
      return (n, List.filter (fun (u, v) -> u <> v) extra, historical))
    ~print:(fun (n, _, _) -> Printf.sprintf "env n=%d" n)

let build_env (n, extra, historical) =
  let graph = Rr_graph.Graph.create n in
  for i = 0 to n - 2 do
    Rr_graph.Graph.add_edge graph i (i + 1)
  done;
  List.iter (fun (u, v) -> Rr_graph.Graph.add_edge graph u v) extra;
  Env.make ~graph
    ~coords:
      (Array.init n (fun i ->
           coord (27.0 +. (2.2 *. float_of_int i)) (-119.0 +. (5.5 *. float_of_int i))))
    ~impact:(Array.make n (1.0 /. float_of_int n))
    ~historical ()

let metric_hop_additivity =
  QCheck.Test.make ~name:"bit-risk of a path equals the sum of its hop weights"
    ~count:200 arb_env
    (fun spec ->
      let env = build_env spec in
      let n = Env.node_count env in
      let path = List.init n Fun.id in
      let kappa = Env.kappa env 0 (n - 1) in
      let by_hops =
        let rec loop acc = function
          | a :: (b :: _ as rest) -> loop (acc +. Env.edge_weight env ~kappa a b) rest
          | _ -> acc
        in
        loop 0.0 path
      in
      Float.abs (by_hops -. Metric.bit_risk_miles env path) < 1e-9)

let ratios_bounded =
  QCheck.Test.make ~name:"risk reduction ratio bounded by 1" ~count:100 arb_env
    (fun spec ->
      let env = build_env spec in
      let r = Ratios.intradomain env in
      r.Ratios.risk_reduction <= 1.0 +. 1e-9)

let riskroute_distance_dominates =
  QCheck.Test.make ~name:"riskroute path is never shorter than shortest path"
    ~count:200 arb_env
    (fun spec ->
      let env = build_env spec in
      let n = Env.node_count env in
      match (Router.riskroute env ~src:0 ~dst:(n - 1), Router.shortest env ~src:0 ~dst:(n - 1)) with
      | Some rr, Some sp -> rr.Router.bit_miles >= sp.Router.bit_miles -. 1e-9
      | _ -> false)

(* exhaustive simple-path enumeration for small graphs *)
let all_simple_paths graph ~src ~dst =
  let acc = ref [] in
  let rec dfs path visited v =
    if v = dst then acc := List.rev path :: !acc
    else
      Rr_graph.Graph.iter_neighbors graph v (fun w ->
          if not (List.mem w visited) then dfs (w :: path) (w :: visited) w)
  in
  dfs [ src ] [ src ] src;
  !acc

let pareto_frontier_truly_optimal =
  QCheck.Test.make ~name:"no simple path dominates a frontier point" ~count:60
    arb_env
    (fun spec ->
      let env = build_env spec in
      let n = Env.node_count env in
      let kappa = Env.kappa env 0 (n - 1) in
      let frontier = Pareto.frontier ~k:16 env ~src:0 ~dst:(n - 1) in
      let everything = all_simple_paths (Env.graph env) ~src:0 ~dst:(n - 1) in
      QCheck.assume (List.length everything <= 200);
      List.for_all
        (fun (p : Pareto.point) ->
          not
            (List.exists
               (fun path ->
                 let miles = Metric.bit_miles env path in
                 let risk = kappa *. Metric.path_risk env path in
                 miles <= p.Pareto.bit_miles +. 1e-9
                 && risk <= p.Pareto.risk +. 1e-9
                 && (miles < p.Pareto.bit_miles -. 1e-9 || risk < p.Pareto.risk -. 1e-9))
               everything))
        frontier)

let backup_repairs_valid =
  QCheck.Test.make ~name:"backup repairs avoid their failure" ~count:100 arb_env
    (fun spec ->
      let env = build_env spec in
      let n = Env.node_count env in
      match Backup.plan env ~src:0 ~dst:(n - 1) with
      | None -> false
      | Some plan ->
        List.for_all
          (fun (r : Backup.repair) ->
            match r.Backup.route with
            | None -> true
            | Some route -> (
              (match r.Backup.failed_node with
              | Some v -> not (List.mem v route.Router.path)
              | None -> true)
              &&
              match r.Backup.failed_link with
              | Some (u, v) ->
                let rec uses = function
                  | a :: (b :: _ as rest) ->
                    ((a = u && b = v) || (a = v && b = u)) || uses rest
                  | _ -> false
                in
                not (uses route.Router.path)
              | None -> true))
          plan.Backup.repairs)

let ospf_zero_risk_high_fidelity =
  QCheck.Test.make ~name:"zero-risk OSPF export routes like shortest path"
    ~count:50 arb_env
    (fun spec ->
      let n, extra, _ = spec in
      let env = build_env (n, extra, Array.make n 0.0) in
      let f = Ospf.fidelity ~pair_cap:40 env in
      (* only quantisation noise on near-tie paths can break matches *)
      f.Ospf.exact_match >= 0.85)

(* --- sampling --- *)

let pair_indices_complete_when_uncapped =
  QCheck.Test.make ~name:"pair_indices covers all ordered pairs when uncapped"
    ~count:100
    QCheck.(int_range 2 12)
    (fun n ->
      let rng = Rr_util.Prng.create 9L in
      let pairs = Rr_util.Sampling.pair_indices rng ~n ~cap:(n * n) in
      Array.length pairs = n * (n - 1)
      &&
      let seen = Hashtbl.create 64 in
      Array.iter (fun p -> Hashtbl.replace seen p ()) pairs;
      Hashtbl.length seen = n * (n - 1))

(* --- forecast calendar --- *)

let timestamp_format =
  QCheck.Test.make ~name:"advisory timestamps are well-formed" ~count:60
    QCheck.(int_bound 59)
    (fun tick ->
      let s = Rr_forecast.Track.timestamp Rr_forecast.Track.sandy ~tick in
      (* e.g. "1100 AM EDT MON OCT 22 2012" *)
      match String.split_on_char ' ' s with
      | [ hour; ampm; tz; dow; mon; day; year ] ->
        String.length hour >= 3
        && (ampm = "AM" || ampm = "PM")
        && tz = "EDT"
        && List.mem dow [ "SUN"; "MON"; "TUE"; "WED"; "THU"; "FRI"; "SAT" ]
        && List.mem mon [ "OCT"; "NOV" ]
        && int_of_string day >= 1
        && int_of_string day <= 31
        && year = "2012"
      | _ -> false)

let union_scope_monotone =
  QCheck.Test.make ~name:"union scope grows with more advisories" ~count:100
    arb_coord
    (fun point ->
      let advisories = Rr_forecast.Track.advisories Rr_forecast.Track.irene in
      let prefix = Rr_util.Listx.take 10 advisories in
      Rr_forecast.Riskfield.union_scope advisories point
      >= Rr_forecast.Riskfield.union_scope prefix point)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "geo",
        [
          q grid_cell_in_bounds; q grid_cell_center_round_trip;
          q bbox_expand_contains; q clamp_idempotent;
        ] );
      ( "graph",
        [ q early_exit_matches_full; q remove_edge_weakens_connectivity; q yen_paths_sorted ] );
      ( "core",
        [
          q metric_hop_additivity; q ratios_bounded; q riskroute_distance_dominates;
          q pareto_frontier_truly_optimal; q backup_repairs_valid;
          q ospf_zero_risk_high_fidelity;
        ] );
      ( "sampling", [ q pair_indices_complete_when_uncapped ] );
      ( "forecast", [ q timestamp_format; q union_scope_monotone ] );
    ]
