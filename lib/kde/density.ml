type t = {
  bandwidth : float;
  (* Flat lat/lon arrays in radians for a fast inner loop. *)
  lats : float array;
  lons : float array;
  cos_lats : float array;
}

let fit ~bandwidth coords =
  if bandwidth <= 0.0 then invalid_arg "Density.fit: non-positive bandwidth";
  if Array.length coords = 0 then invalid_arg "Density.fit: no events";
  let deg = Float.pi /. 180.0 in
  let lats = Array.map (fun c -> Rr_geo.Coord.lat c *. deg) coords in
  let lons = Array.map (fun c -> Rr_geo.Coord.lon c *. deg) coords in
  let cos_lats = Array.map cos lats in
  { bandwidth; lats; lons; cos_lats }

let bandwidth t = t.bandwidth

let event_count t = Array.length t.lats

(* Inlined haversine on pre-converted radians. *)
let dist_miles t i plat plon cos_plat =
  let dlat = plat -. t.lats.(i) in
  let dlon = plon -. t.lons.(i) in
  let s1 = sin (dlat /. 2.0) and s2 = sin (dlon /. 2.0) in
  let h = (s1 *. s1) +. (t.cos_lats.(i) *. cos_plat *. s2 *. s2) in
  let h = Float.max 0.0 (Float.min 1.0 h) in
  2.0 *. Rr_geo.Distance.earth_radius_miles *. asin (sqrt h)

let eval t point =
  let deg = Float.pi /. 180.0 in
  let plat = Rr_geo.Coord.lat point *. deg in
  let plon = Rr_geo.Coord.lon point *. deg in
  let cos_plat = cos plat in
  let n = Array.length t.lats in
  let inv_h2 = 1.0 /. (t.bandwidth *. t.bandwidth) in
  let norm = 1.0 /. (2.0 *. Float.pi *. t.bandwidth *. t.bandwidth) in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = dist_miles t i plat plon cos_plat in
    let z2 = d *. d *. inv_h2 in
    (* Skip negligible kernels: exp(-30) ~ 1e-13. *)
    if z2 < 60.0 then acc := !acc +. exp (-0.5 *. z2)
  done;
  norm *. !acc /. float_of_int n

let log_eval t point =
  let v = eval t point in
  let peak = 1.0 /. (2.0 *. Float.pi *. t.bandwidth *. t.bandwidth) in
  log (Float.max (peak *. 1e-12) v)
