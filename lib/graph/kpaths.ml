(* Yen's algorithm over an undirected graph with a (possibly directed)
   weight function. Edge/node removals are expressed by wrapping the
   weight function rather than mutating the graph; banned hops get a
   huge-but-finite cost and any result that still uses one is
   discarded. *)

let banned_cost = 1e15

let yen g ~weight ~src ~dst ~k =
  if k <= 0 then []
  else
    match Dijkstra.single_pair g ~weight ~src ~dst with
    | None -> []
    | Some first ->
      let accepted = ref [ first ] in
      let candidates : (float * int list) list ref = ref [] in
      let known path =
        List.exists (fun (_, p) -> p = path) !candidates
        || List.exists (fun (_, p) -> p = path) !accepted
      in
      (try
         for _ = 2 to k do
           let _, prev_path = List.hd !accepted in
           let prev = Array.of_list prev_path in
           for i = 0 to Array.length prev - 2 do
             let spur = prev.(i) in
             let root = Array.to_list (Array.sub prev 0 (i + 1)) in
             let root_cost = Dijkstra.path_cost ~weight root in
             (* Ban the next hop of every accepted path sharing this root,
                and every root node before the spur. *)
             let banned_edges =
               List.filter_map
                 (fun (_, p) ->
                   let arr = Array.of_list p in
                   if
                     Array.length arr > i + 1
                     && Array.to_list (Array.sub arr 0 (i + 1)) = root
                   then Some (arr.(i), arr.(i + 1))
                   else None)
                 !accepted
             in
             let banned_nodes = Hashtbl.create 8 in
             List.iteri
               (fun j v -> if j < i then Hashtbl.replace banned_nodes v ())
               root;
             let spur_weight u v =
               if Hashtbl.mem banned_nodes u || Hashtbl.mem banned_nodes v then
                 banned_cost
               else if List.exists (fun (a, b) -> a = u && b = v) banned_edges
               then banned_cost
               else weight u v
             in
             match Dijkstra.single_pair g ~weight:spur_weight ~src:spur ~dst with
             | None -> ()
             | Some (spur_cost, spur_path) ->
               if spur_cost < banned_cost then begin
                 let total_path = root @ List.tl spur_path in
                 let seen = Hashtbl.create 16 in
                 let loopless =
                   List.for_all
                     (fun v ->
                       if Hashtbl.mem seen v then false
                       else begin
                         Hashtbl.add seen v ();
                         true
                       end)
                     total_path
                 in
                 if loopless && not (known total_path) then
                   candidates := (root_cost +. spur_cost, total_path) :: !candidates
               end
           done;
           match List.sort compare !candidates with
           | [] -> raise Exit
           | best :: rest ->
             accepted := best :: !accepted;
             candidates := rest
         done
       with Exit -> ());
      List.rev !accepted
