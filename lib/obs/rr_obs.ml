(* Rr_obs — zero-dependency observability for the RiskRoute engine.

   Design contract (see DESIGN.md "Telemetry architecture"):

   - Disabled mode is near-free: every recording entry point is a single
     branch on one global flag and allocates nothing. Hot kernels are
     expected to tally into local ints and flush once per call.
   - Counters and histograms are *sharded per domain*: each domain that
     records gets a private shard (created on first use via DLS and
     registered under the metric's mutex), so pool workers never contend.
     Draining merges shards with order-independent operations (int sums,
     bucket sums, min/max), so merged counters are deterministic at any
     pool size; only the float [sum] of a histogram depends on shard
     order.
   - Spans form a tree: a DLS-held "current span" id is the parent of
     any span opened on that domain, and [Span.current]/[Span.with_parent]
     let the domain pool carry the submitting span across the queue.
   - A registry owns the metric namespace and the span buffer; the
     [default] registry backs the process-wide dump, private registries
     back golden tests. Exposition (JSON / Prometheus text) sorts every
     section, so output is reproducible given deterministic inputs. *)

(* --- enable flag --- *)

let flag = Atomic.make false

let enabled () = Atomic.get flag

let set_enabled b = Atomic.set flag b

(* --- clock --- *)

module Clock = struct
  (* Wall time (not CPU time: multicore runs must report elapsed time).
     [monotonic] additionally never goes backwards, which keeps span
     durations non-negative across gettimeofday adjustments. The source
     is swappable so exposition tests can run against a fixed clock. *)
  let default_source = Unix.gettimeofday

  let source = Atomic.make default_source

  let last = Atomic.make neg_infinity

  let now () = (Atomic.get source) ()

  let rec monotonic () =
    let t = now () in
    let prev = Atomic.get last in
    if t >= prev then
      if Atomic.compare_and_set last prev t then t else monotonic ()
    else prev

  let set_source f =
    Atomic.set last neg_infinity;
    Atomic.set source f

  let reset_source () = set_source default_source
end

(* Process epoch: flight-recorder events and structured log records are
   stamped relative to module load, like registry spans. *)
let process_epoch = Clock.now ()

(* The canonical RISKROUTE_* environment-variable table; the init block
   below and every other library read knobs through it. *)
module Envvar = Envvar

(* The running binary's git revision, read straight off .git so the
   library stays dependency- and subprocess-free; "unknown" outside a
   checkout. Memoised: the revision cannot change under a running
   process, and /healthz polls it. *)
let git_rev_memo =
  lazy
    (let read_line path =
       let ic = open_in path in
       Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic)
     in
     try
       let head = String.trim (read_line ".git/HEAD") in
       let prefix = "ref: " in
       if
         String.length head > String.length prefix
         && String.sub head 0 (String.length prefix) = prefix
       then begin
         let r = String.sub head 5 (String.length head - 5) in
         try String.trim (read_line (Filename.concat ".git" r))
         with _ ->
           (* Ref not unpacked: scan .git/packed-refs for it. *)
           let ic = open_in ".git/packed-refs" in
           Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
               let rev = ref "unknown" in
               (try
                  while true do
                    let line = input_line ic in
                    match String.index_opt line ' ' with
                    | Some i
                      when String.sub line (i + 1) (String.length line - i - 1)
                           = r ->
                      rev := String.sub line 0 i;
                      raise Exit
                    | _ -> ()
                  done
                with End_of_file | Exit -> ());
               !rev)
       end
       else head
     with _ -> "unknown")

let git_rev () = Lazy.force git_rev_memo

(* Schema versions of the JSON artifacts this build can emit, so a live
   instance is identifiable from /healthz alone. Pre-seeded with the
   dumps this library owns (the versions mirror the literals in the
   respective writers); binaries register the artifacts they own
   (bench statistics, explain records, ...) at startup. *)
module Schema = struct
  let lock = Mutex.create ()

  let table = ref [ ("flight", 1); ("series", 1); ("telemetry", 1) ]

  let register name version =
    Mutex.protect lock (fun () ->
        table := (name, version) :: List.remove_assoc name !table)

  let all () = Mutex.protect lock (fun () -> List.sort compare !table)
end

(* --- histogram buckets ---

   Fixed powers-of-two boundaries: bucket [i] covers (2^(i-21), 2^(i-20)]
   for i in 0..40 (values <= 2^-20 land in bucket 0), bucket 41 is the
   +Inf overflow. Fixed boundaries make shard merging a plain int-array
   sum. *)

let bucket_count = 42

let bucket_bound i = ldexp 1.0 (i - 20)

let bucket_index v =
  if v <= bucket_bound 0 then 0
  else begin
    let m, e = Float.frexp v in
    let e = if m = 0.5 then e - 1 else e in
    let i = e + 20 in
    if i < 0 then 0 else if i > bucket_count - 1 then bucket_count - 1 else i
  end

(* --- metric and registry types --- *)

type counter = {
  c_lock : Mutex.t;
  c_shards : int ref list ref;
  c_key : int ref Domain.DLS.key;
}

type gauge = { g_cell : int Atomic.t }

type hshard = {
  mutable hs_count : int;
  mutable hs_sum : float;
  mutable hs_min : float;
  mutable hs_max : float;
  hs_buckets : int array;
}

type histogram = {
  h_lock : Mutex.t;
  h_shards : hshard list ref;
  h_key : hshard Domain.DLS.key;
}

type span = {
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_start : float; (* seconds since registry creation *)
  sp_dur : float;
  sp_domain : int; (* id of the domain that executed the span *)
}

type sshard = { mutable ss_spans : span list }

type registry = {
  r_lock : Mutex.t;
  r_counters : (string, counter) Hashtbl.t;
  r_gauges : (string, gauge) Hashtbl.t;
  r_histograms : (string, histogram) Hashtbl.t;
  r_meta : (string, string) Hashtbl.t;
  r_span_shards : sshard list ref;
  r_span_key : sshard Domain.DLS.key;
  r_next_span : int Atomic.t;
  r_created : float;
}

module Registry = struct
  type t = registry

  let create () =
    let lock = Mutex.create () in
    let span_shards = ref [] in
    let span_key =
      Domain.DLS.new_key (fun () ->
          let s = { ss_spans = [] } in
          Mutex.lock lock;
          span_shards := s :: !span_shards;
          Mutex.unlock lock;
          s)
    in
    {
      r_lock = lock;
      r_counters = Hashtbl.create 32;
      r_gauges = Hashtbl.create 8;
      r_histograms = Hashtbl.create 16;
      r_meta = Hashtbl.create 8;
      r_span_shards = span_shards;
      r_span_key = span_key;
      r_next_span = Atomic.make 1;
      r_created = Clock.now ();
    }

  let default = create ()
end

(* --- counters --- *)

module Counter = struct
  type t = counter

  (* Get-or-create: a metric name is a single process-wide series, so
     independent modules (and tests) naming the same counter share it. *)
  let make ?(registry = Registry.default) name =
    Mutex.lock registry.r_lock;
    let t =
      match Hashtbl.find_opt registry.r_counters name with
      | Some c -> c
      | None ->
        let lock = Mutex.create () in
        let shards = ref [] in
        let key =
          Domain.DLS.new_key (fun () ->
              let r = ref 0 in
              Mutex.lock lock;
              shards := r :: !shards;
              Mutex.unlock lock;
              r)
        in
        let c = { c_lock = lock; c_shards = shards; c_key = key } in
        Hashtbl.add registry.r_counters name c;
        c
    in
    Mutex.unlock registry.r_lock;
    t

  let add t n =
    if enabled () then begin
      let s = Domain.DLS.get t.c_key in
      s := !s + n
    end

  let incr t = add t 1

  let value t =
    Mutex.lock t.c_lock;
    let v = List.fold_left (fun acc r -> acc + !r) 0 !(t.c_shards) in
    Mutex.unlock t.c_lock;
    v

  let reset t =
    Mutex.lock t.c_lock;
    List.iter (fun r -> r := 0) !(t.c_shards);
    Mutex.unlock t.c_lock
end

(* --- gauges --- *)

module Gauge = struct
  type t = gauge

  let make ?(registry = Registry.default) name =
    Mutex.lock registry.r_lock;
    let t =
      match Hashtbl.find_opt registry.r_gauges name with
      | Some g -> g
      | None ->
        let g = { g_cell = Atomic.make 0 } in
        Hashtbl.add registry.r_gauges name g;
        g
    in
    Mutex.unlock registry.r_lock;
    t

  let set t v = if enabled () then Atomic.set t.g_cell v

  let value t = Atomic.get t.g_cell
end

(* --- histograms --- *)

module Histogram = struct
  type t = histogram

  type snapshot = {
    count : int;
    sum : float;
    vmin : float;
    vmax : float;
    buckets : int array;
  }

  let make ?(registry = Registry.default) name =
    Mutex.lock registry.r_lock;
    let t =
      match Hashtbl.find_opt registry.r_histograms name with
      | Some h -> h
      | None ->
        let lock = Mutex.create () in
        let shards = ref [] in
        let key =
          Domain.DLS.new_key (fun () ->
              let s =
                {
                  hs_count = 0;
                  hs_sum = 0.0;
                  hs_min = infinity;
                  hs_max = neg_infinity;
                  hs_buckets = Array.make bucket_count 0;
                }
              in
              Mutex.lock lock;
              shards := s :: !shards;
              Mutex.unlock lock;
              s)
        in
        let h = { h_lock = lock; h_shards = shards; h_key = key } in
        Hashtbl.add registry.r_histograms name h;
        h
    in
    Mutex.unlock registry.r_lock;
    t

  let observe t v =
    if enabled () then begin
      let s = Domain.DLS.get t.h_key in
      s.hs_count <- s.hs_count + 1;
      s.hs_sum <- s.hs_sum +. v;
      if v < s.hs_min then s.hs_min <- v;
      if v > s.hs_max then s.hs_max <- v;
      let i = bucket_index v in
      s.hs_buckets.(i) <- s.hs_buckets.(i) + 1
    end

  (* Bucket-rank quantile: the upper bound of the bucket holding the
     nearest-rank sample, clamped into [min, max] so single-sample and
     extreme quantiles report an actually-observed value. Depends only
     on count/min/max/buckets, so it is order-independent across shard
     merges (deterministic at any pool size). NaN on an empty
     histogram; exposition clamps that to 0. *)
  let quantile (s : snapshot) q =
    if s.count = 0 then Float.nan
    else begin
      let rank = int_of_float (Float.ceil (q *. float_of_int s.count)) in
      let rank = if rank < 1 then 1 else if rank > s.count then s.count else rank in
      let cum = ref 0 in
      let idx = ref (bucket_count - 1) in
      (try
         Array.iteri
           (fun i n ->
             cum := !cum + n;
             if !cum >= rank then begin
               idx := i;
               raise Exit
             end)
           s.buckets
       with Exit -> ());
      Float.max s.vmin (Float.min s.vmax (bucket_bound !idx))
    end

  let snapshot t =
    Mutex.lock t.h_lock;
    let snap =
      List.fold_left
        (fun acc s ->
          Array.iteri
            (fun i n -> acc.buckets.(i) <- acc.buckets.(i) + n)
            s.hs_buckets;
          {
            acc with
            count = acc.count + s.hs_count;
            sum = acc.sum +. s.hs_sum;
            vmin = Float.min acc.vmin s.hs_min;
            vmax = Float.max acc.vmax s.hs_max;
          })
        {
          count = 0;
          sum = 0.0;
          vmin = infinity;
          vmax = neg_infinity;
          buckets = Array.make bucket_count 0;
        }
        !(t.h_shards)
    in
    Mutex.unlock t.h_lock;
    snap

  let reset t =
    Mutex.lock t.h_lock;
    List.iter
      (fun s ->
        s.hs_count <- 0;
        s.hs_sum <- 0.0;
        s.hs_min <- infinity;
        s.hs_max <- neg_infinity;
        Array.fill s.hs_buckets 0 bucket_count 0)
      !(t.h_shards);
    Mutex.unlock t.h_lock
end

(* --- spans --- *)

(* The current span id of each domain; 0 is the root (no parent). Shared
   across registries: span *identity* is per registry, nesting context is
   per domain. *)
let cur_key = Domain.DLS.new_key (fun () -> 0)

(* --- JSON helpers (shared by exposition, flight recorder and log) --- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* JSON has no Infinity/NaN; non-finite values (empty histogram min/max)
   are clamped to 0. Integral floats keep a trailing ".0" so the field
   stays a float in typed consumers. *)
let fnum v =
  if not (Float.is_finite v) then "0.0"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

(* --- domain labels (trace tracks) --- *)

(* Human-readable names for trace tracks: the pool registers its workers,
   the initial domain is labelled at module load. Unlabelled domains fall
   back to "domain-<id>" in the trace. Process-global, not per registry:
   a domain's identity does not depend on which registry recorded it. *)
let label_lock = Mutex.create ()

let domain_labels : (int, string) Hashtbl.t = Hashtbl.create 8

let set_domain_label name =
  Mutex.lock label_lock;
  Hashtbl.replace domain_labels (Domain.self () :> int) name;
  Mutex.unlock label_lock

let domain_label id =
  Mutex.lock label_lock;
  let l = Hashtbl.find_opt domain_labels id in
  Mutex.unlock label_lock;
  match l with Some l -> l | None -> Printf.sprintf "domain-%d" id

let () = set_domain_label "main"

(* --- open-span tracking (the live watchdog's view) ---

   [with_span] additionally maintains a per-domain stack of the spans
   that are currently *open*, so a live introspection endpoint can ask
   "is anything stuck?" while the process runs. Writers are single-domain
   and lock-free; [open_spans] reads racily but defensively (stale
   entries are bounded by the depth it observed), which is fine for a
   watchdog. Only maintained while recording is enabled. *)

type oshard = {
  os_domain : int;
  mutable os_ids : int array;
  mutable os_names : string array;
  mutable os_starts : float array; (* absolute Clock.monotonic seconds *)
  mutable os_depth : int;
}

let open_shards_lock = Mutex.create ()

let open_shards : oshard list ref = ref []

let open_key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          os_domain = (Domain.self () :> int);
          os_ids = Array.make 8 0;
          os_names = Array.make 8 "";
          os_starts = Array.make 8 0.0;
          os_depth = 0;
        }
      in
      Mutex.lock open_shards_lock;
      open_shards := s :: !open_shards;
      Mutex.unlock open_shards_lock;
      s)

let open_push ~id ~name ~start =
  let s = Domain.DLS.get open_key in
  let d = s.os_depth in
  if d >= Array.length s.os_ids then begin
    let cap = 2 * Array.length s.os_ids in
    let ids = Array.make cap 0
    and names = Array.make cap ""
    and starts = Array.make cap 0.0 in
    Array.blit s.os_ids 0 ids 0 d;
    Array.blit s.os_names 0 names 0 d;
    Array.blit s.os_starts 0 starts 0 d;
    s.os_ids <- ids;
    s.os_names <- names;
    s.os_starts <- starts
  end;
  s.os_ids.(d) <- id;
  s.os_names.(d) <- name;
  s.os_starts.(d) <- start;
  s.os_depth <- d + 1

let open_pop () =
  let s = Domain.DLS.get open_key in
  if s.os_depth > 0 then s.os_depth <- s.os_depth - 1

type open_span = {
  op_domain : int;
  op_id : int;
  op_name : string;
  op_start : float; (* absolute Clock.monotonic seconds *)
}

let open_spans () =
  Mutex.lock open_shards_lock;
  let shards = !open_shards in
  Mutex.unlock open_shards_lock;
  let collect acc s =
    let ids = s.os_ids and names = s.os_names and starts = s.os_starts in
    let d =
      min s.os_depth (min (Array.length ids) (min (Array.length names) (Array.length starts)))
    in
    let acc = ref acc in
    for i = 0 to d - 1 do
      acc :=
        {
          op_domain = s.os_domain;
          op_id = ids.(i);
          op_name = names.(i);
          op_start = starts.(i);
        }
        :: !acc
    done;
    !acc
  in
  List.sort
    (fun a b -> compare (a.op_start, a.op_id) (b.op_start, b.op_id))
    (List.fold_left collect [] shards)

(* --- flight recorder ---

   An always-on, per-domain sharded ring of the most recent engine
   events (span begin/end, cache evictions, warnings, GC major slices):
   cheap enough to leave running in production, rich enough to explain
   "what was the process doing just before it died". Unlike metrics, it
   records regardless of the [enabled] flag — warnings and GC events
   must survive into post-mortem dumps even when telemetry is off (span
   events still require spans, hence recording, to exist).

   Writers are lock-free (each domain owns its ring; slot stores are
   pointer writes, so racy readers observe whole events); the shard list
   itself is the only locked structure. Every event carries a globally
   unique sequence number from one atomic counter, and [events] sorts by
   it — the merge is order-independent across shards and deterministic
   at any pool size. *)

module Flight = struct
  type event = {
    ev_seq : int;
    ev_time : float; (* seconds since process_epoch *)
    ev_domain : int;
    ev_kind : string;
    ev_name : string;
    ev_span : int;
    ev_detail : string;
  }

  let null_event =
    {
      ev_seq = 0;
      ev_time = 0.0;
      ev_domain = 0;
      ev_kind = "";
      ev_name = "";
      ev_span = 0;
      ev_detail = "";
    }

  let default_capacity = 512

  (* Per-domain ring slots; existing shards keep their arrays until
     [reset], new shards pick the current value up. *)
  let cap_cell = Atomic.make default_capacity

  let capacity () = Atomic.get cap_cell

  let set_capacity k =
    if k < 0 then invalid_arg "Flight.set_capacity: need k >= 0";
    Atomic.set cap_cell k

  type fshard = {
    fs_domain : int;
    mutable fs_slots : event array;
    mutable fs_count : int; (* events ever recorded into this shard *)
  }

  let shards_lock = Mutex.create ()

  let shards : fshard list ref = ref []

  let shard_key =
    Domain.DLS.new_key (fun () ->
        let s =
          {
            fs_domain = (Domain.self () :> int);
            fs_slots = Array.make (capacity ()) null_event;
            fs_count = 0;
          }
        in
        Mutex.lock shards_lock;
        shards := s :: !shards;
        Mutex.unlock shards_lock;
        s)

  let seq = Atomic.make 1

  let recorded () = Atomic.get seq - 1

  let record ?time ?(name = "") ?span ?(detail = "") ~kind () =
    let s = Domain.DLS.get shard_key in
    let slots = s.fs_slots in
    let cap = Array.length slots in
    if cap > 0 then begin
      let t = match time with Some t -> t | None -> Clock.monotonic () in
      let span = match span with Some p -> p | None -> Domain.DLS.get cur_key in
      let ev =
        {
          ev_seq = Atomic.fetch_and_add seq 1;
          ev_time = t -. process_epoch;
          ev_domain = s.fs_domain;
          ev_kind = kind;
          ev_name = name;
          ev_span = span;
          ev_detail = detail;
        }
      in
      slots.(s.fs_count mod cap) <- ev;
      s.fs_count <- s.fs_count + 1
    end

  (* Merged view: every retained event exactly once, ordered by sequence
     number — independent of shard enumeration order. *)
  let events () =
    Mutex.lock shards_lock;
    let all = !shards in
    Mutex.unlock shards_lock;
    let collect acc s =
      Array.fold_left
        (fun acc ev -> if ev.ev_seq > 0 then ev :: acc else acc)
        acc s.fs_slots
    in
    List.sort
      (fun a b -> compare a.ev_seq b.ev_seq)
      (List.fold_left collect [] all)

  (* Tests: empty every ring (and apply the current capacity), keep the
     sequence counter monotone so merges stay deterministic. *)
  let reset () =
    Mutex.lock shards_lock;
    List.iter
      (fun s ->
        s.fs_slots <- Array.make (capacity ()) null_event;
        s.fs_count <- 0)
      !shards;
    Mutex.unlock shards_lock

  let to_json () =
    let evs = events () in
    let b = Buffer.create 4096 in
    let add = Buffer.add_string b in
    add "{\n  \"schema\": 1,\n";
    add (Printf.sprintf "  \"capacity\": %d,\n" (capacity ()));
    add (Printf.sprintf "  \"recorded\": %d,\n" (recorded ()));
    add (Printf.sprintf "  \"retained\": %d,\n" (List.length evs));
    add "  \"events\": [";
    List.iteri
      (fun i ev ->
        add (if i = 0 then "\n" else ",\n");
        add
          (Printf.sprintf
             "    {\"seq\": %d, \"time\": %s, \"domain\": %d, \"label\": \""
             ev.ev_seq (fnum ev.ev_time) ev.ev_domain);
        json_escape b (domain_label ev.ev_domain);
        add "\", \"kind\": \"";
        json_escape b ev.ev_kind;
        add "\", \"name\": \"";
        json_escape b ev.ev_name;
        add (Printf.sprintf "\", \"span\": %d, \"detail\": \"" ev.ev_span);
        json_escape b ev.ev_detail;
        add "\"}")
      evs;
    add (if evs = [] then "]\n}\n" else "\n  ]\n}\n");
    Buffer.contents b

  (* Post-mortem dump target: RISKROUTE_FLIGHT=<path> overrides the
     per-pid temp-dir default. Written on SIGUSR1 and on uncaught
     exceptions (see module init below), and served live on /flight. *)
  let dump_path =
    ref
      (Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "riskroute-flight-%d.json" (Unix.getpid ())))

  let set_dump_path p = dump_path := p

  let write_dump () =
    let path = !dump_path in
    let oc = open_out path in
    output_string oc (to_json ());
    close_out oc;
    path
end

let push_span registry sp =
  let s = Domain.DLS.get registry.r_span_key in
  s.ss_spans <- sp :: s.ss_spans

let with_span ?(registry = Registry.default) name f =
  if not (enabled ()) then f ()
  else begin
    let parent = Domain.DLS.get cur_key in
    let id = Atomic.fetch_and_add registry.r_next_span 1 in
    Domain.DLS.set cur_key id;
    let t0 = Clock.monotonic () in
    open_push ~id ~name ~start:t0;
    Flight.record ~time:t0 ~name ~span:id ~kind:"span_begin" ();
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.monotonic () in
        let dur = t1 -. t0 in
        Flight.record ~time:t1 ~name ~span:id
          ~detail:(Printf.sprintf "dur=%.6fs" dur)
          ~kind:"span_end" ();
        open_pop ();
        Domain.DLS.set cur_key parent;
        push_span registry
          {
            sp_id = id;
            sp_parent = parent;
            sp_name = name;
            sp_start = t0 -. registry.r_created;
            sp_dur = dur;
            sp_domain = (Domain.self () :> int);
          })
      f
  end

module Span = struct
  type ctx = int

  let none = 0

  (* Capture on the submitting domain, replay around each pool task:
     spans opened inside the task then attribute to the submitter. *)
  let current () = if enabled () then Domain.DLS.get cur_key else none

  let with_parent parent f =
    if not (enabled ()) then f ()
    else begin
      let old = Domain.DLS.get cur_key in
      Domain.DLS.set cur_key parent;
      Fun.protect ~finally:(fun () -> Domain.DLS.set cur_key old) f
    end
end

let spans ?(registry = Registry.default) () =
  Mutex.lock registry.r_lock;
  let all =
    List.concat_map (fun s -> s.ss_spans) !(registry.r_span_shards)
  in
  Mutex.unlock registry.r_lock;
  List.sort (fun a b -> compare a.sp_id b.sp_id) all

(* --- structured logging ---

   [Log] replaces the ad-hoc [Printf.eprintf] warnings scattered through
   the repo. Unconfigured (no RISKROUTE_LOG, no [set_level]), a warn- or
   error-level record renders to stderr as the plain one-line message it
   always was — byte-compatible with the eprintf it replaced — and
   debug/info records are dropped. Configured to a level, records at or
   above it render as JSON lines stamped with a monotonic timestamp, the
   level, the recording domain's label and the current span id, so log
   output correlates with traces and telemetry. Warn/error records
   always feed the flight ring, configured or not. *)

module Log = struct
  type level = Debug | Info | Warn | Error

  let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

  let level_name = function
    | Debug -> "debug"
    | Info -> "info"
    | Warn -> "warn"
    | Error -> "error"

  let level_of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "debug" -> Some Debug
    | "info" -> Some Info
    | "warn" | "warning" -> Some Warn
    | "error" -> Some Error
    | _ -> None

  let configured : level option ref = ref None

  let set_level l = configured := l

  let current_level () = !configured

  (* Tests capture records through a sink instead of scraping stderr. *)
  let sink : (string -> unit) option ref = ref None

  let set_sink f = sink := f

  let out text =
    match !sink with
    | Some f -> f text
    | None ->
      output_string stderr text;
      flush stderr

  let render_json lvl msg =
    let b = Buffer.create (String.length msg + 96) in
    Buffer.add_string b "{\"ts\": ";
    Buffer.add_string b (fnum (Clock.monotonic () -. process_epoch));
    Buffer.add_string b ", \"level\": \"";
    Buffer.add_string b (level_name lvl);
    Buffer.add_string b "\", \"domain\": \"";
    json_escape b (domain_label (Domain.self () :> int));
    Buffer.add_string b "\", \"span\": ";
    Buffer.add_string b (string_of_int (Domain.DLS.get cur_key));
    Buffer.add_string b ", \"msg\": \"";
    json_escape b msg;
    Buffer.add_string b "\"}\n";
    Buffer.contents b

  let emit lvl msg =
    if severity lvl >= severity Warn then
      Flight.record ~kind:(level_name lvl) ~name:"log" ~detail:msg ();
    match !configured with
    | None -> if severity lvl >= severity Warn then out (msg ^ "\n")
    | Some min_level ->
      if severity lvl >= severity min_level then out (render_json lvl msg)

  let logf lvl fmt = Printf.ksprintf (emit lvl) fmt

  let debugf fmt = logf Debug fmt

  let infof fmt = logf Info fmt

  let warnf fmt = logf Warn fmt

  let errorf fmt = logf Error fmt
end

(* --- kernel wrapper: span + GC delta --- *)

(* [with_kernel name f] is [with_span name f] plus a [Gc.quick_stat]
   delta: allocation pressure of every instrumented kernel lands in
   counters ([<name>.gc_minor_words], [<name>.gc_major_words],
   [<name>.gc_minor_collections], [<name>.gc_major_collections]) and the
   post-run heap size in gauge [<name>.gc_heap_words]. In OCaml 5
   [quick_stat] reads the calling domain, so for kernels that fan out
   the delta covers the submitting domain only — still enough to see an
   allocation regression, which shows up on every domain alike. *)
let with_kernel ?registry name f =
  if not (enabled ()) then f ()
  else begin
    let s0 = Gc.quick_stat () in
    (* [quick_stat.minor_words] is only refreshed at minor collections;
       [Gc.minor_words] reads the live allocation pointer, so short
       kernels that never trigger a collection still report their
       allocations. *)
    let mw0 = Gc.minor_words () in
    Fun.protect
      ~finally:(fun () ->
        let s1 = Gc.quick_stat () in
        let count suffix v =
          if v > 0 then Counter.add (Counter.make ?registry (name ^ suffix)) v
        in
        count ".gc_minor_words" (int_of_float (Gc.minor_words () -. mw0));
        count ".gc_major_words"
          (int_of_float (s1.Gc.major_words -. s0.Gc.major_words));
        count ".gc_minor_collections"
          (s1.Gc.minor_collections - s0.Gc.minor_collections);
        count ".gc_major_collections"
          (s1.Gc.major_collections - s0.Gc.major_collections);
        Gauge.set (Gauge.make ?registry (name ^ ".gc_heap_words"))
          s1.Gc.heap_words)
      (fun () -> with_span ?registry name f)
  end

(* --- meta --- *)

let set_meta ?(registry = Registry.default) k v =
  Mutex.lock registry.r_lock;
  Hashtbl.replace registry.r_meta k v;
  Mutex.unlock registry.r_lock

(* --- reset (tests): zero every value, keep registrations --- *)

let reset ?(registry = Registry.default) () =
  Mutex.lock registry.r_lock;
  let counters = Hashtbl.fold (fun _ c acc -> c :: acc) registry.r_counters [] in
  let hists = Hashtbl.fold (fun _ h acc -> h :: acc) registry.r_histograms [] in
  Hashtbl.iter (fun _ g -> Atomic.set g.g_cell 0) registry.r_gauges;
  List.iter (fun s -> s.ss_spans <- []) !(registry.r_span_shards);
  Atomic.set registry.r_next_span 1;
  Mutex.unlock registry.r_lock;
  List.iter Counter.reset counters;
  List.iter Histogram.reset hists

(* --- exposition --- *)

let sorted_names tbl =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let to_json ?(registry = Registry.default) () =
  let b = Buffer.create 2048 in
  let add = Buffer.add_string b in
  let key name =
    add "\"";
    json_escape b name;
    add "\""
  in
  let section ?(last = false) name body =
    add "  ";
    key name;
    add ": ";
    body ();
    if last then add "\n" else add ",\n"
  in
  let obj names emit =
    if names = [] then add "{}"
    else begin
      add "{\n";
      List.iteri
        (fun i name ->
          add "    ";
          key name;
          add ": ";
          emit name;
          if i < List.length names - 1 then add ",";
          add "\n")
        names;
      add "  }"
    end
  in
  add "{\n  \"schema\": 1,\n";
  Mutex.lock registry.r_lock;
  let meta =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry.r_meta [])
  in
  Mutex.unlock registry.r_lock;
  section "meta" (fun () ->
      obj (List.map fst meta) (fun name ->
          add "\"";
          json_escape b (List.assoc name meta);
          add "\""));
  section "counters" (fun () ->
      obj (sorted_names registry.r_counters) (fun name ->
          add
            (string_of_int
               (Counter.value (Hashtbl.find registry.r_counters name)))));
  section "gauges" (fun () ->
      obj (sorted_names registry.r_gauges) (fun name ->
          add
            (string_of_int
               (Gauge.value (Hashtbl.find registry.r_gauges name)))));
  section "histograms" (fun () ->
      obj (sorted_names registry.r_histograms) (fun name ->
          let s = Histogram.snapshot (Hashtbl.find registry.r_histograms name) in
          add
            (Printf.sprintf
               "{\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \
                \"p50\": %s, \"p90\": %s, \"p99\": %s, \"buckets\": ["
               s.Histogram.count (fnum s.Histogram.sum)
               (fnum s.Histogram.vmin) (fnum s.Histogram.vmax)
               (fnum (Histogram.quantile s 0.50))
               (fnum (Histogram.quantile s 0.90))
               (fnum (Histogram.quantile s 0.99)));
          let first = ref true in
          Array.iteri
            (fun i n ->
              if n > 0 then begin
                if not !first then add ", ";
                first := false;
                add (Printf.sprintf "[%s, %d]" (fnum (bucket_bound i)) n)
              end)
            s.Histogram.buckets;
          add "]}"));
  section ~last:true "spans" (fun () ->
      let sps = spans ~registry () in
      if sps = [] then add "[]"
      else begin
        add "[\n";
        List.iteri
          (fun i sp ->
            add
              (Printf.sprintf
                 "    {\"id\": %d, \"parent\": %d, \"name\": " sp.sp_id
                 sp.sp_parent);
            add "\"";
            json_escape b sp.sp_name;
            add "\"";
            add
              (Printf.sprintf ", \"start\": %s, \"dur\": %s, \"domain\": %d}"
                 (fnum sp.sp_start) (fnum sp.sp_dur) sp.sp_domain);
            if i < List.length sps - 1 then add ",";
            add "\n")
          sps;
        add "  ]"
      end);
  add "}\n";
  Buffer.contents b

let prom_name name =
  let b = Buffer.create (String.length name + 10) in
  Buffer.add_string b "riskroute_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let to_prometheus ?(registry = Registry.default) () =
  let b = Buffer.create 2048 in
  let add = Buffer.add_string b in
  List.iter
    (fun name ->
      let n = prom_name name in
      add (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n
             (Counter.value (Hashtbl.find registry.r_counters name))))
    (sorted_names registry.r_counters);
  List.iter
    (fun name ->
      let n = prom_name name in
      add (Printf.sprintf "# TYPE %s gauge\n%s %d\n" n n
             (Gauge.value (Hashtbl.find registry.r_gauges name))))
    (sorted_names registry.r_gauges);
  List.iter
    (fun name ->
      let n = prom_name name in
      let s = Histogram.snapshot (Hashtbl.find registry.r_histograms name) in
      add (Printf.sprintf "# TYPE %s histogram\n" n);
      (* Sparse buckets: only boundaries where the cumulative count
         advances, plus +Inf. *)
      let cumulative = ref 0 in
      Array.iteri
        (fun i cnt ->
          if cnt > 0 && i < bucket_count - 1 then begin
            cumulative := !cumulative + cnt;
            add
              (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" n (bucket_bound i)
                 !cumulative)
          end)
        s.Histogram.buckets;
      add (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n s.Histogram.count);
      add (Printf.sprintf "%s_sum %g\n" n s.Histogram.sum);
      add (Printf.sprintf "%s_count %d\n" n s.Histogram.count))
    (sorted_names registry.r_histograms);
  Buffer.contents b

(* --- trace exposition (Chrome trace-event JSON) ---

   Serializes the completed span trees as a Chrome/Perfetto-loadable
   trace (chrome://tracing, https://ui.perfetto.dev). Mapping:

   - every span becomes one complete ("ph": "X") event; ts/dur are
     microseconds since registry creation;
   - the domain that executed a span is its track ("tid"), so a
     multicore run shows one lane per pool domain, with lanes named via
     "thread_name" metadata events ("main", "pool-worker-<i>");
   - span identity and parentage ride in "args" ({"id", "parent"}), and
     every parent link that crosses domains (a Parallel hand-off)
     additionally becomes a flow-event pair ("ph": "s"/"f", bound by
     the child span id), so the arrows survive in the trace viewer.

   Events are ordered by span id, so the output is reproducible given
   deterministic spans. *)

let us v = Printf.sprintf "%.3f" (v *. 1e6)

let to_trace ?(registry = Registry.default) () =
  let sps = spans ~registry () in
  let b = Buffer.create 4096 in
  let add = Buffer.add_string b in
  let first = ref true in
  let event s =
    if not !first then add ",\n";
    first := false;
    add "    ";
    add s
  in
  add "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  event
    "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
     \"args\": {\"name\": \"riskroute\"}}";
  let domains =
    List.sort_uniq compare (List.map (fun sp -> sp.sp_domain) sps)
  in
  List.iter
    (fun d ->
      let name = Buffer.create 16 in
      json_escape name (domain_label d);
      event
        (Printf.sprintf
           "{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \
            \"thread_name\", \"args\": {\"name\": \"%s\"}}"
           d (Buffer.contents name)))
    domains;
  let by_id = Hashtbl.create (List.length sps) in
  List.iter (fun sp -> Hashtbl.replace by_id sp.sp_id sp) sps;
  List.iter
    (fun sp ->
      let name = Buffer.create 32 in
      json_escape name sp.sp_name;
      event
        (Printf.sprintf
           "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"ts\": %s, \"dur\": \
            %s, \"name\": \"%s\", \"cat\": \"riskroute\", \"args\": \
            {\"id\": %d, \"parent\": %d}}"
           sp.sp_domain (us sp.sp_start) (us sp.sp_dur)
           (Buffer.contents name) sp.sp_id sp.sp_parent);
      match Hashtbl.find_opt by_id sp.sp_parent with
      | Some parent when parent.sp_domain <> sp.sp_domain ->
        (* Cross-domain hand-off: draw a flow arrow from the parent's
           slice to the child's, bound by the child span id. *)
        event
          (Printf.sprintf
             "{\"ph\": \"s\", \"pid\": 1, \"tid\": %d, \"ts\": %s, \"id\": \
              %d, \"name\": \"handoff\", \"cat\": \"riskroute\"}"
             parent.sp_domain (us parent.sp_start) sp.sp_id);
        event
          (Printf.sprintf
             "{\"ph\": \"f\", \"bp\": \"e\", \"pid\": 1, \"tid\": %d, \
              \"ts\": %s, \"id\": %d, \"name\": \"handoff\", \"cat\": \
              \"riskroute\"}"
             sp.sp_domain (us sp.sp_start) sp.sp_id)
      | Some _ | None -> ())
    sps;
  add "\n  ]\n}\n";
  Buffer.contents b

(* --- exit dump ---

   RISKROUTE_TELEMETRY=<spec> (environment) or [enable_dump spec]
   (CLI/bench --telemetry) turn recording on and dump the default
   registry when the process exits. Spec: "-" / "stderr" / "1" / "true"
   / "on" write JSON to stderr (stdout stays clean for program output);
   anything else is a file path, with a ".prom" suffix selecting
   Prometheus text format instead of JSON.

   RISKROUTE_TRACE=<path> (environment) or [enable_trace path]
   (CLI/bench --trace) additionally write the Chrome trace-event JSON to
   [path] on exit. The trace always goes to a file of its own, never to
   stderr, so it composes with "--telemetry -" without interleaving. *)

let dump_dest = ref None

let trace_dest = ref None

let c_path_invalid = Counter.make "obs.dump_path_invalid"

let c_dump_failed = Counter.make "obs.dump_failed"

let stderr_spec = function
  | "-" | "stderr" | "1" | "true" | "on" -> true
  | _ -> false

(* Validate an output path when the dump is armed, not when the process
   exits: an unwritable directory otherwise only surfaces as a confusing
   exit-time failure after minutes of work. One clear stderr warning and
   a counter bump, mirroring the invalid RISKROUTE_DOMAINS handling; the
   dump stays armed so a path that becomes writable still works. *)
let validate_dump_path ~what spec =
  let writable path =
    try
      Unix.access path [ Unix.W_OK ];
      true
    with Unix.Unix_error _ -> false
  in
  let ok =
    stderr_spec spec
    ||
    let dir = Filename.dirname spec in
    (try Sys.is_directory dir with Sys_error _ -> false)
    && writable dir
    && ((not (Sys.file_exists spec)) || writable spec)
  in
  if not ok then begin
    Counter.incr c_path_invalid;
    Log.warnf
      "riskroute: %s output path %S is not writable (missing or read-only \
       directory?); the exit dump will likely fail"
      what spec
  end;
  ok

let enable_dump spec =
  set_enabled true;
  ignore (validate_dump_path ~what:"telemetry" spec);
  dump_dest := Some spec

let enable_trace path =
  set_enabled true;
  if stderr_spec path then begin
    Counter.incr c_path_invalid;
    Log.warnf
      "riskroute: trace output needs a file path, not %S; tracing disabled"
      path
  end
  else begin
    ignore (validate_dump_path ~what:"trace" path);
    trace_dest := Some path
  end

let write_trace path =
  let oc = open_out path in
  output_string oc (to_trace ());
  close_out oc

let write_dump spec =
  let to_stderr =
    match spec with
    | "-" | "stderr" | "1" | "true" | "on" -> true
    | _ -> false
  in
  let text =
    if (not to_stderr) && Filename.check_suffix spec ".prom" then
      to_prometheus ()
    else to_json ()
  in
  if to_stderr then begin
    output_string stderr text;
    flush stderr
  end
  else begin
    let oc = open_out spec in
    output_string oc text;
    close_out oc
  end

(* Tests: disarm both exit dumps without touching the enabled flag. *)
let disarm_dumps () =
  dump_dest := None;
  trace_dest := None

(* A failed exit dump used to be a stderr line and nothing else —
   invisible to tooling that only reads the telemetry artifacts. Now it
   is all three: an [obs.dump_failed] counter bump, a flight-recorder
   event (so post-mortem dumps name the artifact that went missing), and
   the stderr line, routed through [Log] so it carries level and span
   context when structured logging is configured. *)
let dump_failed ~what ~dest e =
  Counter.incr c_dump_failed;
  Flight.record ~kind:"error"
    ~name:(Printf.sprintf "obs.%s_dump_failed" what)
    ~detail:(Printf.sprintf "%s: %s" dest (Printexc.to_string e))
    ();
  Log.errorf "riskroute: %s dump to %S failed: %s" what dest
    (Printexc.to_string e)

(* --- Runtime_events self-monitoring (GC pause profiling) ---

   The flight ring's [Gc.create_alarm] tick says a major cycle finished;
   it cannot say how long the mutator actually stopped. [Rte] consumes
   the runtime's own event ring (OCaml 5 [Runtime_events], self
   cursor): minor/major slice begin/end pairs become pause-duration
   observations in the ordinary histograms [gc.pause.minor] and
   [gc.pause.major], so GC stalls reach every existing exposition
   surface — JSON dump quantiles, Prometheus buckets, the series
   sampler below — and each pause also lands as a synthetic root span
   in the default registry, so the Chrome trace shows collector slices
   interleaved with engine work on the domain lanes.

   Nothing here runs unless [start] is called (by [Series.enable],
   i.e. --series / RISKROUTE_SERIES, or directly by tests):
   unconfigured, no Runtime_events ring is ever created. [start] is a
   process-global switch; the consumer must be drained with [poll] —
   the series sampler does so every tick, and the exit dump takes a
   final drain. *)

module Rte = struct
  let minor_name = "gc.pause.minor"

  let major_name = "gc.pause.major"

  let c_lost = Counter.make "obs.rte_lost_events"

  (* One lock covers cursor lifecycle and polling: [read_poll] on a
     cursor is not reentrant, and the begin-timestamp table below is
     only touched from inside a poll. *)
  let lock = Mutex.create ()

  let cursor : Runtime_events.cursor option ref = ref None

  let callbacks : Runtime_events.Callbacks.t option ref = ref None

  (* Runtime_events timestamps are nanoseconds on the runtime's own
     monotonic epoch. The offset to [Clock.monotonic] is calibrated
     once, off the first polled event, so synthetic spans land near
     their true position on the shared trace timeline (the offset is
     approximate by up to one poll period; durations are exact). *)
  let calib = ref Float.nan

  (* In-flight collections per (ring domain, phase). *)
  let begins : (int * string, float) Hashtbl.t = Hashtbl.create 16

  let seconds ts = Int64.to_float (Runtime_events.Timestamp.to_int64 ts) *. 1e-9

  let phase_name = function
    | Runtime_events.EV_MINOR -> Some minor_name
    | Runtime_events.EV_MAJOR -> Some major_name
    | _ -> None

  (* [push_span] appends to the polling domain's DLS shard, which the
     domain's other threads share; the field update is a plain pointer
     store of an immutable cons, so a race with the mutator can at
     worst drop one span, never corrupt the list. *)
  let observe_pause ~ring ~name ~t0 ~t1 =
    let dur = t1 -. t0 in
    if dur >= 0.0 then begin
      Histogram.observe (Histogram.make name) dur;
      if Float.is_nan !calib then calib := Clock.monotonic () -. t1;
      let registry = Registry.default in
      push_span registry
        {
          sp_id = Atomic.fetch_and_add registry.r_next_span 1;
          sp_parent = 0;
          sp_name = name;
          sp_start = t0 +. !calib -. registry.r_created;
          sp_dur = dur;
          sp_domain = ring;
        }
    end

  let make_callbacks () =
    Runtime_events.Callbacks.create
      ~runtime_begin:(fun ring ts phase ->
        match phase_name phase with
        | Some name -> Hashtbl.replace begins (ring, name) (seconds ts)
        | None -> ())
      ~runtime_end:(fun ring ts phase ->
        match phase_name phase with
        | Some name -> (
          match Hashtbl.find_opt begins (ring, name) with
          | Some t0 ->
            Hashtbl.remove begins (ring, name);
            observe_pause ~ring ~name ~t0 ~t1:(seconds ts)
          | None -> () (* begin predates the cursor; skip the torso *))
        | None -> ())
      ~lost_events:(fun _ring n -> Counter.add c_lost n)
      ()

  let started () = Mutex.protect lock (fun () -> !cursor <> None)

  (* Idempotent; [false] when the runtime refuses a ring (some
     sandboxes reject the backing memory map), in which case the
     process carries on without pause profiling. *)
  let start () =
    Mutex.protect lock (fun () ->
        match !cursor with
        | Some _ -> true
        | None -> (
          match
            Runtime_events.start ();
            Runtime_events.create_cursor None
          with
          | c ->
            cursor := Some c;
            callbacks := Some (make_callbacks ());
            true
          | exception e ->
            Log.warnf
              "riskroute: Runtime_events self-monitoring unavailable: %s"
              (Printexc.to_string e);
            false))

  (* Drain pending runtime events into the histograms/spans; returns
     the number of events consumed. A no-op before [start]. *)
  let poll () =
    Mutex.protect lock (fun () ->
        match (!cursor, !callbacks) with
        | Some c, Some cbs -> Runtime_events.read_poll c cbs None
        | _ -> 0)
end

(* --- time-series sampler ---

   [Series] turns the cumulative registries into a trajectory: a
   fixed-capacity ring of timestamped samples, each the *delta* over
   the previous sample — counter increments, histogram windows (count,
   sum and bucket-rank p50/p90/p99 of just that window's observations),
   [Gc.quick_stat] movement — plus absolute gauge values and the
   engine-cache stats provider's fields. Enabled via --series /
   RISKROUTE_SERIES (period from RISKROUTE_SAMPLE_PERIOD, default 1s);
   unconfigured, no sampler thread is spawned and nothing here costs a
   cycle. The ring is dumped as schema'd JSON at exit and served live
   on GET /series. *)

module Series = struct
  type hwindow = {
    w_count : int;
    w_sum : float;
    w_p50 : float;
    w_p90 : float;
    w_p99 : float;
  }

  type sample = {
    s_seq : int;
    s_time : float; (* seconds since process_epoch *)
    s_counters : (string * int) list; (* window deltas, nonzero only *)
    s_gauges : (string * int) list; (* absolute values, nonzero only *)
    s_hists : (string * hwindow) list; (* windows with observations *)
    s_gc_minor_words : float; (* window delta *)
    s_gc_major_words : float;
    s_gc_minor_collections : int;
    s_gc_major_collections : int;
    s_gc_heap_words : int; (* absolute *)
    s_stats : (string * int) list; (* provider fields, absolute *)
  }

  let default_capacity = 512

  let default_period = 1.0

  (* [lock] owns the ring, the delta baselines and the dump arming;
     [tlock] owns the sampler-thread lifecycle (so stopping the thread
     can join it without holding the ring lock its final sample
     needs). *)
  let lock = Mutex.create ()

  let cap = ref default_capacity

  let ring : sample option array ref = ref (Array.make default_capacity None)

  let count = ref 0 (* samples ever taken *)

  let period_cell = ref default_period

  let dest : string option ref = ref None

  let prev_counters : (string, int) Hashtbl.t = Hashtbl.create 64

  let prev_hists : (string, int array * int * float) Hashtbl.t =
    Hashtbl.create 32

  (* (minor_words, major_words, minor_collections, major_collections)
     at the previous sample; the first window measures from process
     start. *)
  let prev_gc = ref (0.0, 0.0, 0, 0)

  let stats_provider : (unit -> (string * int) list) ref = ref (fun () -> [])

  let set_stats_provider f = stats_provider := f

  let set_period p =
    if not (Float.is_finite p && p > 0.0) then
      invalid_arg "Series.set_period: need positive seconds";
    period_cell := p

  let period () = !period_cell

  let capacity () = Mutex.protect lock (fun () -> !cap)

  (* Tests: resize (and empty) the ring. *)
  let set_capacity k =
    if k <= 0 then invalid_arg "Series.set_capacity: need k > 0";
    Mutex.protect lock (fun () ->
        cap := k;
        ring := Array.make k None;
        count := 0)

  let recorded () = Mutex.protect lock (fun () -> !count)

  let reset () =
    Mutex.protect lock (fun () ->
        Array.fill !ring 0 (Array.length !ring) None;
        count := 0;
        Hashtbl.reset prev_counters;
        Hashtbl.reset prev_hists;
        prev_gc := (0.0, 0.0, 0, 0))

  (* Take one sample right now: drain the Runtime_events consumer so
     this window owns its GC pauses, snapshot every metric, store the
     deltas. Exposed for deterministic tests; the sampler thread calls
     it on its period. *)
  let sample_now () =
    ignore (Rte.poll ());
    let reg = Registry.default in
    Mutex.lock reg.r_lock;
    let counters =
      Hashtbl.fold (fun k c acc -> (k, c) :: acc) reg.r_counters []
    in
    let gauges = Hashtbl.fold (fun k g acc -> (k, g) :: acc) reg.r_gauges [] in
    let hists =
      Hashtbl.fold (fun k h acc -> (k, h) :: acc) reg.r_histograms []
    in
    Mutex.unlock reg.r_lock;
    let stats = try !stats_provider () with _ -> [] in
    let g = Gc.quick_stat () in
    let mw = Gc.minor_words () in
    let by_name (a, _) (b, _) = compare (a : string) b in
    Mutex.protect lock (fun () ->
        let t = Clock.monotonic () -. process_epoch in
        let cdeltas =
          List.filter_map
            (fun (name, c) ->
              let v = Counter.value c in
              let prev =
                Option.value (Hashtbl.find_opt prev_counters name) ~default:0
              in
              Hashtbl.replace prev_counters name v;
              if v <> prev then Some (name, v - prev) else None)
            counters
        in
        let gvals =
          List.filter_map
            (fun (name, gg) ->
              let v = Gauge.value gg in
              if v <> 0 then Some (name, v) else None)
            gauges
        in
        let hwins =
          List.filter_map
            (fun (name, h) ->
              let s = Histogram.snapshot h in
              let pb, pc, ps =
                Option.value
                  (Hashtbl.find_opt prev_hists name)
                  ~default:(Array.make bucket_count 0, 0, 0.0)
              in
              let wb =
                Array.init bucket_count (fun i ->
                    s.Histogram.buckets.(i) - pb.(i))
              in
              let wcount = s.Histogram.count - pc in
              let wsum = s.Histogram.sum -. ps in
              Hashtbl.replace prev_hists name
                (s.Histogram.buckets, s.Histogram.count, s.Histogram.sum);
              if wcount <= 0 then None
              else begin
                (* Window min/max are unknowable from cumulative
                   min/max, so window quantiles are pure bucket
                   bounds (the infinite clamp is a no-op). *)
                let ws =
                  {
                    Histogram.count = wcount;
                    sum = wsum;
                    vmin = neg_infinity;
                    vmax = infinity;
                    buckets = wb;
                  }
                in
                Some
                  ( name,
                    {
                      w_count = wcount;
                      w_sum = wsum;
                      w_p50 = Histogram.quantile ws 0.50;
                      w_p90 = Histogram.quantile ws 0.90;
                      w_p99 = Histogram.quantile ws 0.99;
                    } )
              end)
            hists
        in
        let p_mw, p_majw, p_minc, p_majc = !prev_gc in
        prev_gc :=
          (mw, g.Gc.major_words, g.Gc.minor_collections,
           g.Gc.major_collections);
        let s =
          {
            s_seq = !count + 1;
            s_time = t;
            s_counters = List.sort by_name cdeltas;
            s_gauges = List.sort by_name gvals;
            s_hists = List.sort by_name hwins;
            s_gc_minor_words = mw -. p_mw;
            s_gc_major_words = g.Gc.major_words -. p_majw;
            s_gc_minor_collections = g.Gc.minor_collections - p_minc;
            s_gc_major_collections = g.Gc.major_collections - p_majc;
            s_gc_heap_words = g.Gc.heap_words;
            s_stats = List.sort by_name stats;
          }
        in
        let k = Array.length !ring in
        !ring.(!count mod k) <- Some s;
        incr count)

  (* Retained samples, oldest first. *)
  let samples () =
    Mutex.protect lock (fun () ->
        let c = !count and k = Array.length !ring in
        let n = min c k in
        List.init n (fun i ->
            match !ring.((c - n + i) mod k) with
            | Some s -> s
            | None -> assert false))

  let to_json () =
    let sams = samples () in
    let b = Buffer.create 4096 in
    let add = Buffer.add_string b in
    let fields out l =
      if l = [] then add "{}"
      else begin
        add "{";
        List.iteri
          (fun i (name, v) ->
            if i > 0 then add ", ";
            add "\"";
            json_escape b name;
            add "\": ";
            out v)
          l;
        add "}"
      end
    in
    add "{\n  \"schema\": 1,\n";
    add (Printf.sprintf "  \"period_seconds\": %s,\n" (fnum (period ())));
    add (Printf.sprintf "  \"capacity\": %d,\n" (capacity ()));
    add (Printf.sprintf "  \"recorded\": %d,\n" (recorded ()));
    add (Printf.sprintf "  \"retained\": %d,\n" (List.length sams));
    add "  \"samples\": [";
    List.iteri
      (fun i s ->
        add (if i = 0 then "\n" else ",\n");
        add
          (Printf.sprintf "    {\"seq\": %d, \"time\": %s,\n     \"counters\": "
             s.s_seq (fnum s.s_time));
        fields (fun v -> add (string_of_int v)) s.s_counters;
        add ",\n     \"gauges\": ";
        fields (fun v -> add (string_of_int v)) s.s_gauges;
        add ",\n     \"histograms\": ";
        fields
          (fun w ->
            add
              (Printf.sprintf
                 "{\"count\": %d, \"sum\": %s, \"p50\": %s, \"p90\": %s, \
                  \"p99\": %s}"
                 w.w_count (fnum w.w_sum) (fnum w.w_p50) (fnum w.w_p90)
                 (fnum w.w_p99)))
          s.s_hists;
        add ",\n     \"gc\": ";
        add
          (Printf.sprintf
             "{\"minor_words\": %s, \"major_words\": %s, \
              \"minor_collections\": %d, \"major_collections\": %d, \
              \"heap_words\": %d}"
             (fnum s.s_gc_minor_words) (fnum s.s_gc_major_words)
             s.s_gc_minor_collections s.s_gc_major_collections
             s.s_gc_heap_words);
        add ",\n     \"stats\": ";
        fields (fun v -> add (string_of_int v)) s.s_stats;
        add "}")
      sams;
    add (if sams = [] then "]\n}\n" else "\n  ]\n}\n");
    Buffer.contents b

  (* --- sampler thread --- *)

  let tlock = Mutex.create ()

  let sampler : (Thread.t * Unix.file_descr * Unix.file_descr) option ref =
    ref None

  let sampler_running () = Mutex.protect tlock (fun () -> !sampler <> None)

  (* The stop pipe doubles as the timer: [select] blocks for one period
     or until [stop_sampler] writes a byte, so shutdown is prompt even
     mid-period. *)
  let rec sampler_loop rd =
    match Unix.select [ rd ] [] [] (period ()) with
    | [], _, _ ->
      sample_now ();
      sampler_loop rd
    | _ -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> sampler_loop rd

  let start_sampler () =
    Mutex.protect tlock (fun () ->
        if !sampler = None then begin
          let rd, wr = Unix.pipe () in
          let t = Thread.create sampler_loop rd in
          sampler := Some (t, rd, wr)
        end)

  (* Join the thread, then take one final sample: a run shorter than
     the period still records its whole story as one window. *)
  let stop_sampler () =
    let s =
      Mutex.protect tlock (fun () ->
          let s = !sampler in
          sampler := None;
          s)
    in
    match s with
    | None -> ()
    | Some (t, rd, wr) ->
      (try ignore (Unix.write_substring wr "x" 0 1)
       with Unix.Unix_error _ -> ());
      Thread.join t;
      (try Unix.close wr with Unix.Unix_error _ -> ());
      (try Unix.close rd with Unix.Unix_error _ -> ());
      sample_now ()

  let write_dump spec =
    let text = to_json () in
    if stderr_spec spec then begin
      output_string stderr text;
      flush stderr
    end
    else begin
      let oc = open_out spec in
      output_string oc text;
      close_out oc
    end

  (* [--series SPEC] / RISKROUTE_SERIES=SPEC: turn recording on, start
     the Runtime_events consumer and the sampler thread, and arm the
     exit dump ("-"/"stderr" or a file path, like --telemetry). *)
  let enable spec =
    set_enabled true;
    ignore (validate_dump_path ~what:"series" spec);
    Mutex.protect lock (fun () -> dest := Some spec);
    ignore (Rte.start ());
    start_sampler ()

  let disarm () =
    Mutex.protect lock (fun () -> dest := None)

  let exit_dump () =
    let armed = Mutex.protect lock (fun () -> !dest) in
    if armed <> None || sampler_running () then stop_sampler ();
    match armed with
    | None -> ()
    | Some spec -> (
      try write_dump spec with e -> dump_failed ~what:"series" ~dest:spec e)
end

(* Post-mortem companion to the flight ring: the SIGUSR1 handler also
   writes a full telemetry snapshot next to the flight dump
   ("<flight>.json" -> "<flight>-telemetry.json"), so a poke at a live
   process captures counters and histograms too, not just recent
   events. *)
let telemetry_snapshot_path () =
  let p = !Flight.dump_path in
  if Filename.check_suffix p ".json" then
    Filename.chop_suffix p ".json" ^ "-telemetry.json"
  else p ^ "-telemetry.json"

let () =
  (match Envvar.trimmed Envvar.telemetry with
  | Some v -> enable_dump v
  | None -> ());
  (match Envvar.trimmed Envvar.trace with
  | Some v -> enable_trace v
  | None -> ());
  (match Envvar.trimmed Envvar.log with
  | Some v -> (
    match Log.level_of_string v with
    | Some _ as l -> Log.set_level l
    | None ->
      (match String.lowercase_ascii (String.trim v) with
      | "off" | "none" | "0" -> () (* explicit "leave me unconfigured" *)
      | _ ->
        Log.warnf
          "riskroute: ignoring invalid RISKROUTE_LOG=%S (want \
           debug|info|warn|error)"
          v))
  | None -> ());
  (match Envvar.trimmed Envvar.flight with
  | Some v -> Flight.set_dump_path v
  | None -> ());
  (match Envvar.raw Envvar.flight_cap with
  | None -> ()
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some k when k >= 0 -> Flight.set_capacity k
    | Some _ | None ->
      Log.warnf
        "riskroute: ignoring invalid RISKROUTE_FLIGHT_CAP=%S (want a \
         non-negative integer)"
        v));
  (* Period first, so RISKROUTE_SERIES starts its sampler on the
     configured cadence. *)
  (match Envvar.raw Envvar.sample_period with
  | None -> ()
  | Some v -> (
    match float_of_string_opt (String.trim v) with
    | Some p when Float.is_finite p && p > 0.0 -> Series.set_period p
    | Some _ | None ->
      Log.warnf
        "riskroute: ignoring invalid RISKROUTE_SAMPLE_PERIOD=%S (want \
         positive seconds)"
        v));
  (match Envvar.trimmed Envvar.series with
  | Some v -> Series.enable v
  | None -> ());
  (* GC major slices land in the flight ring: a post-mortem dump can
     distinguish "stalled in our code" from "stalled collecting". *)
  ignore
    (Gc.create_alarm (fun () ->
         Flight.record ~kind:"gc_major" ~name:"gc.major_cycle" ()));
  (* Post-mortem hooks: SIGUSR1 dumps the flight ring and the process
     continues; an uncaught exception dumps it on the way down, then
     defers to the default handler (backtrace printing intact). *)
  (try
     Sys.set_signal Sys.sigusr1
       (Sys.Signal_handle
          (fun _ ->
            Flight.record ~kind:"signal" ~name:"sigusr1" ();
            (try ignore (Flight.write_dump ()) with _ -> ());
            (* Full telemetry snapshot alongside the flight ring: a
               post-mortem poke captures the cumulative counters and
               histograms too, not just recent events. *)
            try
              let oc = open_out (telemetry_snapshot_path ()) in
              output_string oc (to_json ());
              close_out oc
            with _ -> ()))
   with Invalid_argument _ | Sys_error _ -> () (* no SIGUSR1 here *));
  Printexc.set_uncaught_exception_handler (fun exn bt ->
      Flight.record ~kind:"crash" ~name:"uncaught_exception"
        ~detail:(Printexc.to_string exn) ();
      (try ignore (Flight.write_dump ()) with _ -> ());
      Printexc.default_uncaught_exception_handler exn bt);
  at_exit (fun () ->
      (* Series first (stopping the sampler takes the final window, and
         its dump drains the Runtime_events consumer so the last GC
         pauses reach the trace and telemetry below), then trace, then
         metrics: each write is a single buffered file or stderr write,
         so "--trace f.json --telemetry -" never interleaves on
         stderr. *)
      Series.exit_dump ();
      (match !trace_dest with
      | None -> ()
      | Some path -> (
        try write_trace path with e -> dump_failed ~what:"trace" ~dest:path e));
      match !dump_dest with
      | None -> ()
      | Some spec -> (
        try write_dump spec
        with e -> dump_failed ~what:"telemetry" ~dest:spec e))
