(** Fig. 11: best additional peering relationship for each regional
    network (dotted red links in the paper's figure). *)

val default_spec : Rr_engine.Spec.t

val compute :
  Rr_engine.Context.t -> Rr_engine.Spec.t ->
  Riskroute.Peer_advisor.recommendation list

val run : Rr_engine.Context.t -> Format.formatter -> unit
